// Online tuning under workload drift: decay-off bit-identity, lazy
// decay at merge (bit-identical to a pre-scaled cold session), the
// detector's fast/slow path split (pure re-weighting costs zero
// prepare work, a new class dirties exactly one shard), hysteresis
// scheduling, DBA accept/veto, the retire/re-add routing regression,
// and decayed coverage under fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "catalog/catalog.h"
#include "core/drift.h"
#include "core/report.h"
#include "core/session.h"
#include "optimizer/fault_injection.h"
#include "optimizer/simulator.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct Env {
  Catalog cat;
  IndexPool pool;
  std::unique_ptr<SystemSimulator> sim;

  explicit Env(double z = 0.0) {
    cat = MakeTpchCatalog(0.1, z);
    sim = std::make_unique<SystemSimulator>(&cat, &pool, CostModel::SystemA());
  }
};

Workload MakeWorkload(int n, uint64_t seed = 42, double update_fraction = 0.0,
                      bool randomize_weights = false) {
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  WorkloadOptions o;
  o.num_statements = n;
  o.seed = seed;
  o.update_fraction = update_fraction;
  o.randomize_weights = randomize_weights;
  return MakeHomogeneousWorkload(cat, o);
}

CoPhyOptions TestOptions() {
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 3000;
  opts.prepare.num_threads = 4;
  return opts;
}

// --- DecayFactor ----------------------------------------------------------

TEST(DecayFactorTest, DisabledAndFreshAreExactlyOne) {
  EXPECT_EQ(DecayFactor(0, 2.0), 1.0);
  EXPECT_EQ(DecayFactor(5, 0.0), 1.0);   // disabled
  EXPECT_EQ(DecayFactor(5, -1.0), 1.0);  // disabled
  EXPECT_EQ(DecayFactor(-3, 2.0), 1.0);  // clock never runs backwards
}

TEST(DecayFactorTest, HalvesEveryHalfLife) {
  EXPECT_EQ(DecayFactor(1, 1.0), 0.5);
  EXPECT_EQ(DecayFactor(2, 1.0), 0.25);
  EXPECT_EQ(DecayFactor(4, 2.0), 0.25);
  EXPECT_NEAR(DecayFactor(1, 2.0), std::sqrt(0.5), 1e-15);
}

// --- DriftDetector --------------------------------------------------------

TEST(DriftDetectorTest, FirstObservationIsFullDrift) {
  DriftDetector d;
  const auto r = d.Observe({{0, 1.0}, {1, 3.0}});
  EXPECT_EQ(r.score, 1.0);
  EXPECT_EQ(r.new_classes, 2);
  EXPECT_EQ(r.retired_classes, 0);
}

TEST(DriftDetectorTest, StableDistributionScoresZero) {
  DriftDetector d;
  d.Observe({{0, 1.0}, {1, 3.0}});
  // Scaling every weight uniformly (e.g. decay with no churn) is not
  // drift: the normalized distribution is unchanged.
  const auto r = d.Observe({{0, 0.5}, {1, 1.5}});
  EXPECT_EQ(r.score, 0.0);
  EXPECT_EQ(r.new_classes, 0);
  EXPECT_EQ(r.retired_classes, 0);
}

TEST(DriftDetectorTest, WeightShiftScoresTotalVariation) {
  DriftDetector d;
  d.Observe({{0, 3.0}, {1, 1.0}});  // shares 0.75 / 0.25
  const auto r = d.Observe({{0, 1.0}, {1, 3.0}});  // shares 0.25 / 0.75
  EXPECT_NEAR(r.score, 0.5, 1e-12);
  EXPECT_EQ(r.new_classes, 0);
}

TEST(DriftDetectorTest, TurnoverCountsNewAndRetired) {
  DriftDetector d;
  d.Observe({{0, 1.0}, {1, 1.0}});
  const auto r = d.Observe({{1, 1.0}, {2, 1.0}});
  EXPECT_EQ(r.new_classes, 1);
  EXPECT_EQ(r.retired_classes, 1);
  // Class 0's 0.5 share left, class 2's 0.5 arrived: TV = 0.5.
  EXPECT_NEAR(r.score, 0.5, 1e-12);
  const auto disjoint = d.Observe({{5, 2.0}});
  EXPECT_EQ(disjoint.score, 1.0);
}

TEST(DriftDetectorTest, EmptyFirstSnapshotIsStable) {
  DriftDetector d;
  const auto r = d.Observe({});
  EXPECT_EQ(r.score, 0.0);
  EXPECT_EQ(r.new_classes, 0);
}

// --- HysteresisScheduler --------------------------------------------------

TEST(HysteresisTest, WindowOneIsIdentity) {
  HysteresisScheduler s(1, 1);
  auto d = s.Update({3, 1});
  EXPECT_EQ(d.applied, (std::vector<IndexId>{1, 3}));
  EXPECT_EQ(d.materialized, (std::vector<IndexId>{1, 3}));
  d = s.Update({1});
  EXPECT_EQ(d.applied, (std::vector<IndexId>{1}));
  EXPECT_EQ(d.dropped, (std::vector<IndexId>{3}));
}

TEST(HysteresisTest, MaterializeNeedsConsecutiveStreak) {
  HysteresisScheduler s(2, 2);
  auto d = s.Update({7});
  EXPECT_TRUE(d.applied.empty());
  EXPECT_EQ(d.pending_materialize, (std::vector<IndexId>{7}));
  // An interruption resets the streak.
  d = s.Update({});
  EXPECT_TRUE(d.applied.empty());
  d = s.Update({7});
  EXPECT_TRUE(d.applied.empty());
  d = s.Update({7});  // second consecutive: materialize
  EXPECT_EQ(d.applied, (std::vector<IndexId>{7}));
  EXPECT_EQ(d.materialized, (std::vector<IndexId>{7}));
  // One absent retune: still applied, pending drop.
  d = s.Update({});
  EXPECT_EQ(d.applied, (std::vector<IndexId>{7}));
  EXPECT_EQ(d.pending_drop, (std::vector<IndexId>{7}));
  // A reappearance heals the streak.
  d = s.Update({7});
  EXPECT_EQ(d.applied, (std::vector<IndexId>{7}));
  EXPECT_TRUE(d.pending_drop.empty());
  // Two consecutive absences: drop.
  s.Update({});
  d = s.Update({});
  EXPECT_TRUE(d.applied.empty());
  EXPECT_EQ(d.dropped, (std::vector<IndexId>{7}));
}

TEST(HysteresisTest, ForceIncludeAndDrop) {
  HysteresisScheduler s(3, 3);
  s.ForceInclude(4);
  EXPECT_EQ(s.applied(), (std::vector<IndexId>{4}));
  s.ForceDrop(4);
  EXPECT_TRUE(s.applied().empty());
}

// --- DbaFeedback ----------------------------------------------------------

TEST(DbaFeedbackTest, VerbsOverrideEachOther) {
  DbaFeedback f;
  EXPECT_TRUE(f.empty());
  f.Accept(2);
  f.Veto(2);
  EXPECT_FALSE(f.IsAccepted(2));
  EXPECT_TRUE(f.IsVetoed(2));
  f.Accept(2);
  EXPECT_TRUE(f.IsAccepted(2));
  EXPECT_FALSE(f.IsVetoed(2));
  f.Clear(2);
  EXPECT_TRUE(f.empty());
}

TEST(DbaFeedbackTest, AppendsOneEqRowPerVerb) {
  DbaFeedback f;
  f.Accept(1);
  f.Veto(9);
  ConstraintSet cs;
  f.AppendConstraints(&cs);
  ASSERT_EQ(cs.index_constraints().size(), 2u);
  EXPECT_EQ(cs.index_constraints()[0].name, "dba_accept_1");
  EXPECT_EQ(cs.index_constraints()[0].rhs, 1.0);
  EXPECT_EQ(cs.index_constraints()[1].name, "dba_veto_9");
  EXPECT_EQ(cs.index_constraints()[1].rhs, 0.0);
  EXPECT_EQ(cs.index_constraints()[0].op, CmpOp::kEq);
  EXPECT_EQ(cs.index_constraints()[1].op, CmpOp::kEq);
}

// --- Decay-off bit-identity ----------------------------------------------

TEST(DriftSessionTest, DisabledDecayIsBitIdenticalAcrossEpochs) {
  const Workload w = MakeWorkload(30, 42, 0.2, /*randomize_weights=*/true);
  ConstraintSet cs;

  Env base;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession plain(base.sim.get(), &base.pool, so);
  plain.AddWorkload(w);
  cs.SetStorageBudget(0.5 * base.cat.TotalDataBytes());
  const Recommendation want = plain.Tune(cs);
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();

  // Same session with the epoch clock running but decay disabled (the
  // default): AdvanceEpoch must be a pure no-op, exact bits.
  Env e;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(w);
  session.AdvanceEpoch(7);
  const Recommendation got = session.Tune(cs);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.configuration.ids(), want.configuration.ids());
  EXPECT_EQ(got.objective, want.objective);  // exact bits
  EXPECT_EQ(session.epoch(), 7);
  // Default hysteresis windows: applied == recommended immediately.
  std::vector<IndexId> applied = got.materialization.applied;
  std::vector<IndexId> chosen = got.configuration.ids();
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(applied, chosen);
}

// --- Lazy decay at merge --------------------------------------------------

TEST(DriftSessionTest, DecayMatchesPreScaledColdSessionExactly) {
  // Two batches one epoch apart with half-life 1 must solve the exact
  // problem of a cold session whose first-batch weights arrive already
  // halved (0.5 is a power of two: the scaling is exact in binary).
  const Workload old_batch = MakeWorkload(12, 3);
  const Workload new_batch = MakeWorkload(12, 17, 0.25);

  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  so.drift.half_life_epochs = 1.0;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(old_batch);
  session.AdvanceEpoch();
  session.AddWorkload(new_batch);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation got = session.Tune(cs);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();

  Env oracle;
  SessionOptions plain = so;
  plain.drift = DriftOptions();
  AdvisorSession cold(oracle.sim.get(), &oracle.pool, plain);
  Workload halved;
  for (const Query& q : old_batch.statements()) {
    Query c = q;
    c.weight *= 0.5;
    halved.Add(std::move(c));
  }
  cold.AddWorkload(halved);
  cold.AddWorkload(new_batch);
  const Recommendation want = cold.Tune(cs);
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();

  EXPECT_EQ(got.configuration.ids(), want.configuration.ids());
  EXPECT_EQ(got.objective, want.objective);  // exact bits
}

// --- Fast/slow path split -------------------------------------------------

TEST(DriftSessionTest, PureReweightingCostsZeroPrepareWork) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  so.drift.half_life_epochs = 2.0;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  const Workload w = MakeWorkload(20, 42);
  session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation first = session.Tune(cs);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();

  // A batch of known-class instances plus an epoch tick is pure
  // re-weighting: the retune must not issue a single what-if call and
  // must record zero preparation work.
  const int64_t calls_before = e.sim->num_whatif_calls();
  session.AdvanceEpoch();
  session.AddStatements({w[0], w[1]});
  const Recommendation second = session.Retune(cs);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_EQ(e.sim->num_whatif_calls(), calls_before);
  EXPECT_EQ(session.drift_stats().full_prepares, 0);
  EXPECT_EQ(session.drift_stats().incremental_prepares, 0);
  EXPECT_EQ(session.drift_stats().new_classes, 0);
  EXPECT_EQ(session.drift_stats().retired_classes, 0);
  EXPECT_GT(session.drift_stats().score, 0.0);  // weights did move
  EXPECT_EQ(session.drift_stats().epoch, 1);
  EXPECT_EQ(second.prepare.drift_score, session.drift_stats().score);
}

TEST(DriftSessionTest, NewClassDirtiesExactlyOneShard) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  // Statements from a strict subset of the homogeneous templates, so a
  // later template is guaranteed to open a new class.
  std::vector<Query> stmts;
  for (int t = 0; t < 6; ++t) {
    stmts.push_back(MakeHomogeneousStatement(e.cat, t, 42));
  }
  session.AddStatements(stmts);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  ASSERT_TRUE(session.Tune(cs).status.ok());

  session.AddStatements({MakeHomogeneousStatement(e.cat, 7, 42)});
  const Recommendation rec = session.Retune(cs);
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  // Exactly the new class's shard took a full re-preparation; the
  // other shards at most absorbed incremental γ entries for candidates
  // the new template introduced.
  EXPECT_EQ(session.drift_stats().full_prepares, 1);
  EXPECT_EQ(session.drift_stats().new_classes, 1);
  EXPECT_EQ(rec.prepare.drift_new_classes, 1);
}

// --- Retire / re-add across a decay boundary ------------------------------

TEST(DriftSessionTest, RemoveThenReaddSameClassAcrossDecayBoundary) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  so.drift.half_life_epochs = 1.0;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  const std::vector<QueryId> ids = session.AddStatements(
      {MakeHomogeneousStatement(e.cat, 0, 42),
       MakeHomogeneousStatement(e.cat, 1, 42),
       MakeHomogeneousStatement(e.cat, 2, 42)});
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  ASSERT_TRUE(session.Tune(cs).status.ok());
  EXPECT_EQ(session.num_classes(), 3);

  // Retire template 1's class, tick the clock, then re-add an
  // equivalent statement. The router must have dropped the signature
  // bucket entry with the class: the re-add opens a *fresh* class
  // (ids are never reused) instead of gluing onto the dead one.
  ASSERT_TRUE(session.RemoveStatements({ids[1]}).ok());
  session.AdvanceEpoch();
  session.AddStatements({MakeHomogeneousStatement(e.cat, 1, 42)});
  EXPECT_EQ(session.num_classes(), 3);
  // Cold solve: the invariant under test is the rebuilt routing, not
  // warm-start equivalence (a warm retune may stop at a different
  // solution inside the gap target).
  const Recommendation rec = session.Tune(cs);
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();

  // The rebuilt session solves the exact problem of a cold session
  // over the surviving stream (template 1 arriving one epoch later
  // than the rest, weights decayed accordingly). The oracle shares the
  // pool — like tenants of the service — so candidate ids coincide.
  AdvisorSession cold(e.sim.get(), &e.pool, so);
  cold.AddStatements({MakeHomogeneousStatement(e.cat, 0, 42),
                      MakeHomogeneousStatement(e.cat, 2, 42)});
  cold.AdvanceEpoch();
  cold.AddStatements({MakeHomogeneousStatement(e.cat, 1, 42)});
  const Recommendation want = cold.Tune(cs);
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();
  EXPECT_EQ(rec.configuration.ids(), want.configuration.ids());
  EXPECT_EQ(rec.objective, want.objective);  // exact bits
}

// --- DBA feedback through the session -------------------------------------

TEST(DriftSessionTest, VetoNeverRecommendedAcceptAlwaysIs) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 2;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(MakeWorkload(24, 42, 0.2));
  ConstraintSet cs;
  cs.SetStorageBudget(0.3 * e.cat.TotalDataBytes());
  const Recommendation baseline = session.Tune(cs);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  ASSERT_FALSE(baseline.configuration.ids().empty());

  const IndexId vetoed = baseline.configuration.ids().front();
  ASSERT_TRUE(session.Veto(vetoed).ok());
  const Recommendation after_veto = session.Retune(cs);
  ASSERT_TRUE(after_veto.status.ok()) << after_veto.status.ToString();
  for (IndexId id : after_veto.configuration.ids()) EXPECT_NE(id, vetoed);
  for (IndexId id : after_veto.materialization.applied) EXPECT_NE(id, vetoed);

  // Accept: pinned into every later recommendation and into the
  // applied set immediately; clearing the veto restores freedom.
  ASSERT_FALSE(after_veto.configuration.ids().empty());
  const IndexId accepted = after_veto.configuration.ids().front();
  ASSERT_TRUE(session.Accept(accepted).ok());
  const Recommendation after_accept = session.Retune(cs);
  ASSERT_TRUE(after_accept.status.ok()) << after_accept.status.ToString();
  const std::vector<IndexId>& got = after_accept.configuration.ids();
  EXPECT_NE(std::find(got.begin(), got.end(), accepted), got.end());
  EXPECT_TRUE(std::binary_search(after_accept.materialization.applied.begin(),
                                 after_accept.materialization.applied.end(),
                                 accepted));
  ASSERT_TRUE(session.ClearFeedback(vetoed).ok());
  EXPECT_TRUE(session.feedback().IsAccepted(accepted));
  EXPECT_FALSE(session.feedback().IsVetoed(vetoed));

  EXPECT_FALSE(session.Veto(-1).ok());
  EXPECT_FALSE(session.Accept(1 << 30).ok());
}

TEST(DriftSessionTest, AcceptedIdOutsideCandidatesIsForceAppended) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(MakeWorkload(16, 42));
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation first = session.Tune(cs);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();

  // Restrict to an explicit subset, then accept a pool index outside
  // it: Refresh must force-append the id (an empty z == 1 row would
  // otherwise be infeasible) and the recommendation must include it.
  std::vector<IndexId> all = session.candidates();
  ASSERT_GE(all.size(), 4u);
  const IndexId outside = all.back();
  std::vector<IndexId> subset(all.begin(), all.begin() + all.size() / 2);
  ASSERT_EQ(std::find(subset.begin(), subset.end(), outside), subset.end());
  ASSERT_TRUE(session.SetExplicitCandidates(subset).ok());
  ASSERT_TRUE(session.Accept(outside).ok());
  const Recommendation rec = session.Retune(cs);
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  const std::vector<IndexId>& got = rec.configuration.ids();
  EXPECT_NE(std::find(got.begin(), got.end(), outside), got.end());
  const std::vector<IndexId>& cands = session.candidates();
  EXPECT_NE(std::find(cands.begin(), cands.end(), outside), cands.end());
}

// --- Hysteresis through the session ---------------------------------------

TEST(DriftSessionTest, HysteresisDelaysMaterializationByWindow) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.drift.materialize_after = 2;
  so.drift.drop_after = 2;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(MakeWorkload(20, 42));
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation first = session.Tune(cs);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_FALSE(first.configuration.ids().empty());
  // One sighting is not enough with a window of two.
  EXPECT_TRUE(first.materialization.applied.empty());
  EXPECT_FALSE(first.materialization.pending_materialize.empty());

  const Recommendation second = session.Retune(cs);
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  std::vector<IndexId> chosen = second.configuration.ids();
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(second.materialization.applied, chosen);
  EXPECT_EQ(second.materialization.materialized, chosen);
}

// --- Decayed coverage under fault injection -------------------------------

TableId LeastReferencedTable(const Workload& w) {
  std::map<TableId, int> counts;
  for (const Query& q : w.statements()) {
    std::map<TableId, int> seen;
    for (TableId t : q.tables) {
      if (seen[t]++ == 0) ++counts[t];
    }
  }
  TableId best = kInvalidTable;
  int fewest = std::numeric_limits<int>::max();
  for (const auto& [t, c] : counts) {
    if (c < fewest) {
      best = t;
      fewest = c;
    }
  }
  return best;
}

TEST(DriftSessionTest, CoverageUsesDecayedLiveWeight) {
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  WorkloadOptions o;
  o.num_statements = 24;
  o.seed = 42;
  o.update_fraction = 0.2;
  const Workload w = MakeHeterogeneousWorkload(cat, o);
  const TableId target = LeastReferencedTable(w);
  ASSERT_NE(target, kInvalidTable);
  auto fails = [target](const Query& q) {
    return std::find(q.tables.begin(), q.tables.end(), target) !=
           q.tables.end();
  };

  // The statements the backend refuses to cost arrive one epoch after
  // the healthy bulk, so the quarantined weight is *younger*: decayed
  // coverage must be strictly below the raw-weight figure (the pre-fix
  // session over-reported it).
  std::vector<Query> healthy, doomed;
  for (const Query& q : w.statements()) {
    (fails(q) ? doomed : healthy).push_back(q);
  }
  ASSERT_FALSE(healthy.empty());
  ASSERT_FALSE(doomed.empty());

  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  auto run = [&](const std::vector<Query>& first_batch, double half_life) {
    Env e;
    FaultInjectionOptions fo;
    fo.permanent_failure_predicate = fails;
    FaultInjectingWhatIf faulty(e.sim.get(), fo);
    SessionOptions opts = so;
    opts.drift.half_life_epochs = half_life;
    AdvisorSession session(&faulty, &e.pool, opts);
    session.AddStatements(first_batch);
    session.AdvanceEpoch();
    session.AddStatements(doomed);
    ConstraintSet cs;
    cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
    const Recommendation rec = session.Tune(cs);
    EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
    EXPECT_TRUE(rec.degraded);
    EXPECT_GT(rec.coverage, 0.0);
    EXPECT_LT(rec.coverage, 1.0);
    return rec.coverage;
  };

  const double decayed = run(healthy, /*half_life=*/1.0);
  // Ground truth: a decay-free session whose first batch arrives with
  // weights already halved sees exactly the decayed live weights
  // (routing is weight-blind, so the quarantined shard set matches).
  std::vector<Query> halved = healthy;
  for (Query& q : halved) q.weight *= 0.5;
  const double expected = run(halved, /*half_life=*/0.0);
  EXPECT_EQ(decayed, expected);  // exact bits
  // And it differs from the raw-weight coverage: quarantined weight is
  // younger, so decay shrinks the healthy share.
  const double raw = run(healthy, /*half_life=*/0.0);
  EXPECT_LT(decayed, raw);
}

// --- Report surface -------------------------------------------------------

TEST(DriftSessionTest, RenderPrepareStatsShowsDriftLine) {
  PrepareStats stats;
  EXPECT_EQ(RenderPrepareStats(stats).find("Drift:"), std::string::npos);
  stats.drift_score = 0.25;
  stats.drift_new_classes = 2;
  const std::string out = RenderPrepareStats(stats);
  EXPECT_NE(out.find("Drift: score 0.250"), std::string::npos);
  EXPECT_NE(out.find("2 new / 0 retired"), std::string::npos);
}

}  // namespace
}  // namespace cophy
