// Tests for core/bipgen: Theorem-1 BIP construction. The central
// property: the literal y/x/z Model and the structured ChoiceProblem
// describe the same optimization problem — solving both on small
// instances yields the same optimum.
#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/bipgen.h"
#include "index/candidates.h"
#include "lp/branch_and_bound.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class BipGenTest : public ::testing::Test {
 protected:
  void Prepare(int num_queries, uint64_t seed, double update_fraction = 0.0,
               bool covering = false, bool share_templates = true) {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    pool_ = IndexPool();
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = num_queries;
    o.seed = seed;
    o.update_fraction = update_fraction;
    w_ = MakeHomogeneousWorkload(cat_, o);
    CandidateOptions copts;
    copts.max_key_columns = 1;  // keep the model tiny
    copts.covering_variants = covering;
    candidates_ = GenerateCandidates(w_, cat_, copts, pool_);
    InumOptions io;
    // With sharing off every statement is its own leader, so BIPGen
    // materializes one query block per statement (the per-statement
    // structure these tests pin down).
    io.share_templates = share_templates;
    inum_ = std::make_unique<Inum>(sim_.get(), io);
    inum_->Prepare(w_, candidates_);
  }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  std::unique_ptr<Inum> inum_;
  Workload w_;
  std::vector<IndexId> candidates_;
};

TEST_F(BipGenTest, StatsCountVariablesAndRows) {
  Prepare(6, 11, 0.0, false, /*share_templates=*/false);
  ConstraintSet cs;
  cs.SetStorageBudget(1e9);
  const BipStats stats = ComputeBipStats(*inum_, candidates_, cs);
  EXPECT_EQ(stats.z_variables, static_cast<int64_t>(candidates_.size()));
  EXPECT_EQ(stats.y_variables, inum_->TotalTemplates());
  EXPECT_GT(stats.x_variables, 0);
  EXPECT_GT(stats.linking_rows, 0);
  EXPECT_EQ(stats.constraint_rows, 1);  // storage only

  const lp::Model m = BuildModel(*inum_, candidates_, cs);
  EXPECT_EQ(m.num_variables(),
            stats.y_variables + stats.x_variables + stats.z_variables);
}

TEST_F(BipGenTest, CanonicalBlocksShrinkStatsLosslessly) {
  // With template sharing on, cost-equivalent statements collapse into
  // one weighted query block: y/x counts shrink while z stays put.
  Prepare(20, 11, 0.0, false, /*share_templates=*/false);
  ConstraintSet cs;
  cs.SetStorageBudget(1e9);
  const BipStats per_statement = ComputeBipStats(*inum_, candidates_, cs);
  Prepare(20, 11, 0.0, false, /*share_templates=*/true);
  const BipStats merged = ComputeBipStats(*inum_, candidates_, cs);
  EXPECT_EQ(merged.z_variables, per_statement.z_variables);
  EXPECT_LT(merged.y_variables, per_statement.y_variables);
  EXPECT_LT(merged.x_variables, per_statement.x_variables);
  EXPECT_GT(inum_->num_shared_statements(), 0);
}

TEST_F(BipGenTest, VariableCountGrowsLinearlyInWorkload) {
  // Same seed → W30 is a statement-wise prefix of W60, so doubling the
  // workload should roughly double ΣK_q (Theorem 1's linearity).
  ConstraintSet cs;
  Prepare(30, 13);
  const BipStats s30 = ComputeBipStats(*inum_, candidates_, cs);
  Prepare(60, 13);
  const BipStats s60 = ComputeBipStats(*inum_, candidates_, cs);
  EXPECT_GT(s60.y_variables, s30.y_variables);
  EXPECT_LT(static_cast<double>(s60.y_variables),
            2.8 * static_cast<double>(s30.y_variables));
}

TEST_F(BipGenTest, ChoiceProblemMirrorsInumCosts) {
  Prepare(6, 17, 0.0, false, /*share_templates=*/false);
  ConstraintSet cs;
  lp::ChoiceProblem p = BuildChoiceProblem(*inum_, candidates_, cs);
  ASSERT_EQ(static_cast<int>(p.queries.size()), w_.size());
  // Selecting everything reproduces the INUM cost of the full set.
  std::vector<uint8_t> all(candidates_.size(), 1);
  const Configuration full(candidates_);
  for (int q = 0; q < w_.size(); ++q) {
    EXPECT_NEAR(p.QueryCost(q, all), inum_->ShellCost(q, full),
                1e-9 + 1e-9 * inum_->ShellCost(q, full));
  }
  std::vector<uint8_t> none(candidates_.size(), 0);
  for (int q = 0; q < w_.size(); ++q) {
    EXPECT_NEAR(p.QueryCost(q, none),
                inum_->ShellCost(q, Configuration::Empty()), 1e-6);
  }
}

TEST_F(BipGenTest, UpdateCostsBecomeFixedCosts) {
  // Covering variants INCLUDE the updated columns, so some candidates
  // are maintenance-affected.
  Prepare(12, 19, /*update_fraction=*/0.4, /*covering=*/true);
  ASSERT_FALSE(w_.UpdateIds().empty());
  ConstraintSet cs;
  lp::ChoiceProblem p = BuildChoiceProblem(*inum_, candidates_, cs);
  double expected_constant = 0;
  for (QueryId uid : w_.UpdateIds()) {
    expected_constant += w_[uid].weight * sim_->BaseUpdateCost(w_[uid]).value();
  }
  EXPECT_NEAR(p.constant_cost, expected_constant, 1e-6);
  bool any_fixed = false;
  for (double f : p.fixed_cost) any_fixed |= f > 0;
  EXPECT_TRUE(any_fixed);  // some candidate is maintained by some update
}

TEST_F(BipGenTest, ModelAndChoiceProblemAgreeOnOptimum) {
  Prepare(3, 23);
  // Shrink further: only the first few candidates, else the literal
  // model is too big for the dense simplex.
  std::vector<IndexId> small(candidates_.begin(),
                             candidates_.begin() +
                                 std::min<size_t>(5, candidates_.size()));
  ConstraintSet cs;
  double budget = 0;
  for (IndexId id : small) budget += IndexSizeBytes(pool_[id], cat_);
  cs.SetStorageBudget(budget * 0.5);  // binding

  lp::ChoiceProblem p = BuildChoiceProblem(*inum_, small, cs);
  lp::ChoiceSolver structured(&p);
  lp::ChoiceSolveOptions copts;
  copts.gap_target = 0.0;
  copts.node_limit = 1000000;
  const lp::ChoiceSolution s1 = structured.Solve(copts);
  ASSERT_TRUE(s1.status.ok());

  const lp::Model m = BuildModel(*inum_, small, cs);
  lp::MipOptions mopts;
  mopts.gap_target = 0.0;
  mopts.node_limit = 500000;
  const lp::MipSolution s2 = SolveMip(m, mopts);
  ASSERT_TRUE(s2.status.ok()) << s2.status.ToString();

  EXPECT_NEAR(s1.objective, s2.objective,
              1e-5 + 1e-6 * std::abs(s1.objective));
}

TEST_F(BipGenTest, QueryCapsPropagate) {
  Prepare(4, 29);
  ConstraintSet cs;
  cs.AddQueryCostConstraint({0, 0.5, 0.0});
  std::vector<double> baseline(w_.size(), 0.0);
  baseline[0] = inum_->ShellCost(0, Configuration::Empty());
  lp::ChoiceProblem p =
      BuildChoiceProblem(*inum_, candidates_, cs, baseline);
  EXPECT_NEAR(p.queries[0].cost_cap, 0.5 * baseline[0], 1e-9);
  EXPECT_EQ(p.queries[1].cost_cap, lp::kInf);
}

TEST_F(BipGenTest, SubsetCandidatesProduceSubsetProblem) {
  Prepare(6, 31);
  ConstraintSet cs;
  std::vector<IndexId> half(candidates_.begin(),
                            candidates_.begin() + candidates_.size() / 2);
  lp::ChoiceProblem p = BuildChoiceProblem(*inum_, half, cs);
  EXPECT_EQ(p.num_indexes, static_cast<int>(half.size()));
  // Options only reference dense ids within range.
  for (const auto& q : p.queries) {
    for (const auto& plan : q.plans) {
      for (const auto& slot : plan.slots) {
        for (const auto& o : slot.options) {
          EXPECT_LT(o.index, p.num_indexes);
          EXPECT_GE(o.index, lp::kBaseOption);
        }
      }
    }
  }
}

}  // namespace
}  // namespace cophy
