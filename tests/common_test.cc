// Unit tests for common/: Status, Rng, Zipf.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/status.h"

namespace cophy {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Infeasible("storage budget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "INFEASIBLE: storage budget");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EveryCodeRenders) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::InvalidArgument("m").ToString(), "INVALID_ARGUMENT: m");
  EXPECT_EQ(Status::NotFound("m").ToString(), "NOT_FOUND: m");
  EXPECT_EQ(Status::Infeasible("m").ToString(), "INFEASIBLE: m");
  EXPECT_EQ(Status::Unbounded("m").ToString(), "UNBOUNDED: m");
  EXPECT_EQ(Status::ResourceExhausted("m").ToString(),
            "RESOURCE_EXHAUSTED: m");
  EXPECT_EQ(Status::Timeout("m").ToString(), "TIMEOUT: m");
  EXPECT_EQ(Status::Internal("m").ToString(), "INTERNAL: m");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultDeathTest, ValueOnErrorAbortsWithStatus) {
  // The abort fires in every build mode (no assert/NDEBUG dependence)
  // and carries the contained status in the message.
  Result<int> r(Status::Timeout("backend gone"));
  EXPECT_DEATH(static_cast<void>(r.value()), "TIMEOUT: backend gone");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsModulus) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng a(5);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

// --- Zipf ------------------------------------------------------------

TEST(ZipfTest, UniformWhenZZero) {
  Zipf z(100, 0.0);
  for (uint64_t r = 1; r <= 100; ++r) {
    EXPECT_NEAR(z.Pmf(r), 0.01, 1e-12);
  }
  EXPECT_NEAR(z.Cdf(50), 0.5, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double s : {0.0, 0.5, 1.0, 2.0}) {
    Zipf z(500, s);
    double sum = 0;
    for (uint64_t r = 1; r <= 500; ++r) sum += z.Pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "z=" << s;
  }
}

TEST(ZipfTest, CdfMonotoneAndComplete) {
  Zipf z(10000, 1.5);
  double prev = 0;
  for (uint64_t r = 1; r <= 10000; r += 97) {
    const double c = z.Cdf(r);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(z.Cdf(10000), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(z.Cdf(0), 0.0);
}

TEST(ZipfTest, SkewConcentratesMassAtHead) {
  Zipf uniform(1000, 0.0), skewed(1000, 2.0);
  EXPECT_GT(skewed.Cdf(10), 0.8);            // head dominates under z=2
  EXPECT_NEAR(uniform.Cdf(10), 0.01, 1e-12); // uniform head is tiny
  EXPECT_GT(skewed.Pmf(1), 100 * skewed.Pmf(1000));
}

TEST(ZipfTest, LargeDomainApproximationContinuity) {
  // The Euler–Maclaurin tail must join the exact head smoothly.
  Zipf z(1000000, 1.0);
  const double at_boundary = z.Cdf(4096);
  const double after = z.Cdf(4097);
  EXPECT_GT(after, at_boundary);
  EXPECT_LT(after - at_boundary, 1e-4);
  EXPECT_NEAR(z.Cdf(1000000), 1.0, 1e-4);
}

TEST(ZipfTest, RankAtQuantileInvertsCdf) {
  Zipf z(1000, 1.2);
  for (double q : {0.0, 0.1, 0.37, 0.5, 0.9, 0.999}) {
    const uint64_t r = z.RankAtQuantile(q);
    EXPECT_GT(z.Cdf(r), q);
    if (r > 1) {
      EXPECT_LE(z.Cdf(r - 1), q);
    }
  }
}

TEST(ZipfTest, SampleMatchesDistribution) {
  Zipf z(10, 1.0);
  Rng rng(17);
  std::vector<int> counts(11, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (uint64_t r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.Pmf(r), 0.01);
  }
}

/// Property sweep: Zipf invariants across (n, z) combinations.
class ZipfPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfPropertyTest, Invariants) {
  const auto [n, s] = GetParam();
  Zipf z(n, s);
  EXPECT_NEAR(z.Cdf(n), 1.0, 1e-4);
  // Pmf is non-increasing in rank.
  double prev = z.Pmf(1);
  for (uint64_t r = 2; r <= std::min<uint64_t>(n, 64); ++r) {
    const double p = z.Pmf(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
  // Quantile inversion at a few points.
  for (double q : {0.25, 0.75}) {
    const uint64_t r = z.RankAtQuantile(q);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 10, 1000, 100000),
                       ::testing::Values(0.0, 0.5, 1.0, 2.0)));

}  // namespace
}  // namespace cophy
