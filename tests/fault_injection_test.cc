// The fault-tolerant what-if boundary: deterministic fault injection,
// retry/backoff + circuit breaker + degraded fallback, and the
// end-to-end invariants — a fault-free decorator stack is bit-identical
// to the raw simulator, retries mask transient faults exactly, and a
// seeded sweep across failure rates/budgets/latencies always returns
// cleanly (a recommendation or an error Status, never a crash).
//
// Determinism caveat: the injector's per-call attempt counters and the
// call-budget countdown are interleaving-dependent under parallel
// Prepare, so every test asserting exact outcomes pins num_threads = 1;
// the multi-threaded sweep entries assert clean-outcome invariants only.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "optimizer/simulator.h"
#include "baselines/cophy_advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "core/report.h"
#include "optimizer/fault_injection.h"
#include "optimizer/resilient_whatif.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct Env {
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool;
  SystemSimulator sim{&cat, &pool, CostModel::SystemA()};
};

Workload MakeWorkload(int n, uint64_t seed = 42,
                      double update_fraction = 0.2) {
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  WorkloadOptions o;
  o.num_statements = n;
  o.seed = seed;
  o.update_fraction = update_fraction;
  return MakeHomogeneousWorkload(cat, o);
}

CoPhyOptions TestOptions() {
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 3000;
  opts.prepare.num_threads = 1;  // deterministic fault sequences
  return opts;
}

/// Fast retry policy for tests: generous attempts, microsecond backoff.
ResilienceOptions FastRetries(int max_attempts = 8) {
  ResilienceOptions ro;
  ro.retry.max_attempts = max_attempts;
  ro.retry.initial_backoff_seconds = 1e-6;
  ro.retry.max_backoff_seconds = 1e-5;
  return ro;
}

struct TuneOutput {
  Status status;
  std::vector<IndexId> config;  // sorted
  double objective = 0;
};

/// One fresh-environment CoPhy run through an arbitrary decorator
/// stack. `decorate` receives the raw simulator and returns the
/// boundary the advisor talks to (identity = fault-free baseline).
template <typename Decorate>
TuneOutput RunCoPhy(const Workload& w, Decorate&& decorate) {
  Env e;
  WhatIfOptimizer* boundary = decorate(e);
  CoPhy advisor(boundary, &e.pool, w, TestOptions());
  TuneOutput out;
  out.status = advisor.Prepare();
  if (!out.status.ok()) return out;
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation rec = advisor.Tune(cs);
  out.status = rec.status;
  out.config = rec.configuration.ids();
  std::sort(out.config.begin(), out.config.end());
  out.objective = rec.objective;
  return out;
}

// --- Fault injector ------------------------------------------------------

TEST(FaultInjectorTest, ZeroRateIsTransparent) {
  Env e;
  FaultInjectionOptions fo;
  fo.seed = 7;
  FaultInjectingWhatIf faulty(&e.sim, fo);
  const Workload w = MakeWorkload(6);
  for (const Query& q : w.statements()) {
    Result<double> through = faulty.Cost(q, Configuration::Empty());
    ASSERT_TRUE(through.ok());
    // Bit-identical pass-through, not approximately equal.
    EXPECT_EQ(*through, e.sim.Cost(q, Configuration::Empty()).value());
  }
  EXPECT_EQ(faulty.injected_transient_faults(), 0);
  EXPECT_EQ(faulty.injected_permanent_faults(), 0);
}

TEST(FaultInjectorTest, TransientFaultsReplayBitIdentically) {
  const Workload w = MakeWorkload(8);
  // Two independent injectors with the same seed must agree on the
  // fate of every call in the same sequence.
  std::vector<StatusCode> first;
  for (int run = 0; run < 2; ++run) {
    Env e;
    FaultInjectionOptions fo;
    fo.seed = 11;
    fo.transient_failure_rate = 0.5;
    FaultInjectingWhatIf faulty(&e.sim, fo);
    std::vector<StatusCode> codes;
    for (const Query& q : w.statements()) {
      for (int attempt = 0; attempt < 4; ++attempt) {
        codes.push_back(faulty.Cost(q, Configuration::Empty()).status().code());
      }
    }
    if (run == 0) {
      first = codes;
    } else {
      EXPECT_EQ(codes, first);
    }
  }
  // At rate 0.5 over 32 draws, both outcomes occur.
  EXPECT_NE(std::count(first.begin(), first.end(), StatusCode::kOk), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), StatusCode::kTimeout), 0);
}

TEST(FaultInjectorTest, RetryingTheSameCallRedrawsItsFate) {
  Env e;
  const Workload w = MakeWorkload(1);
  FaultInjectionOptions fo;
  fo.seed = 3;
  fo.transient_failure_rate = 0.5;
  FaultInjectingWhatIf faulty(&e.sim, fo);
  // The attempt counter advances per call key, so repeating ONE logical
  // call redraws its fate — at rate 0.5 both outcomes occur.
  int succeeded = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    succeeded += faulty.Cost(w[0], Configuration::Empty()).ok() ? 1 : 0;
  }
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(faulty.injected_transient_faults(), 0);
}

TEST(FaultInjectorTest, PermanentFaultsUntilHealed) {
  Env e;
  const Workload w = MakeWorkload(2);
  FaultInjectionOptions fo;
  fo.permanent_failure_queries = {w[0].id};
  FaultInjectingWhatIf faulty(&e.sim, fo);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(faulty.Cost(w[0], Configuration::Empty()).status().code(),
              StatusCode::kInternal);
  }
  EXPECT_TRUE(faulty.Cost(w[1], Configuration::Empty()).ok());
  EXPECT_EQ(faulty.injected_permanent_faults(), 3);
  faulty.Heal();
  Result<double> healed = faulty.Cost(w[0], Configuration::Empty());
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, e.sim.Cost(w[0], Configuration::Empty()).value());
}

TEST(FaultInjectorTest, PermanentPredicateMatchesByStructure) {
  Env e;
  const Workload w = MakeWorkload(6);
  const TableId target = w[0].tables[0];
  FaultInjectionOptions fo;
  fo.permanent_failure_predicate = [target](const Query& q) {
    return std::find(q.tables.begin(), q.tables.end(), target) !=
           q.tables.end();
  };
  FaultInjectingWhatIf faulty(&e.sim, fo);
  int failed = 0, passed = 0;
  for (const Query& q : w.statements()) {
    const bool hits = std::find(q.tables.begin(), q.tables.end(), target) !=
                      q.tables.end();
    const Status s = faulty.Cost(q, Configuration::Empty()).status();
    EXPECT_EQ(s.code(), hits ? StatusCode::kInternal : StatusCode::kOk);
    (hits ? failed : passed) += 1;
  }
  EXPECT_GT(failed, 0);
}

TEST(FaultInjectorTest, CallBudgetExhaustsThenRestores) {
  Env e;
  const Workload w = MakeWorkload(1);
  FaultInjectionOptions fo;
  fo.call_budget = 3;
  FaultInjectingWhatIf faulty(&e.sim, fo);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(faulty.Cost(w[0], Configuration::Empty()).ok()) << i;
  }
  EXPECT_EQ(faulty.Cost(w[0], Configuration::Empty()).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(faulty.budget_rejections(), 1);
  faulty.set_call_budget(-1);  // unlimited again
  EXPECT_TRUE(faulty.Cost(w[0], Configuration::Empty()).ok());
}

// --- Resilient decorator -------------------------------------------------

TEST(ResilientWhatIfTest, RetriesMaskTransientFaultsExactly) {
  Env e;
  const Workload w = MakeWorkload(8);
  FaultInjectionOptions fo;
  fo.seed = 5;
  fo.transient_failure_rate = 0.6;
  FaultInjectingWhatIf faulty(&e.sim, fo);
  ResilientWhatIf resilient(&faulty, FastRetries(/*max_attempts=*/12));
  for (const Query& q : w.statements()) {
    Result<double> r = resilient.Cost(q, Configuration::Empty());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // The masked answer is the backend's answer, not an approximation.
    EXPECT_EQ(*r, e.sim.Cost(q, Configuration::Empty()).value());
  }
  const WhatIfHealth h = resilient.health();
  EXPECT_GT(h.retries, 0);
  EXPECT_EQ(h.failures, 0);
  EXPECT_EQ(h.degraded, 0);
}

TEST(ResilientWhatIfTest, PermanentErrorsFailThroughWithoutRetry) {
  Env e;
  const Workload w = MakeWorkload(1);
  FaultInjectionOptions fo;
  fo.permanent_failure_queries = {w[0].id};
  FaultInjectingWhatIf faulty(&e.sim, fo);
  ResilienceOptions ro = FastRetries();
  ro.degraded_fallback = false;
  ResilientWhatIf resilient(&faulty, ro);
  EXPECT_EQ(resilient.Cost(w[0], Configuration::Empty()).status().code(),
            StatusCode::kInternal);
  const WhatIfHealth h = resilient.health();
  EXPECT_EQ(h.retries, 0);  // kInternal is not retryable
  EXPECT_EQ(h.failures, 1);
  EXPECT_EQ(faulty.injected_permanent_faults(), 1);  // one backend attempt
}

TEST(ResilientWhatIfTest, DegradedFallbackServesLastKnownAnswer) {
  Env e;
  const Workload w = MakeWorkload(1);
  FaultInjectionOptions fo;
  fo.call_budget = 1;  // exactly one healthy backend call
  FaultInjectingWhatIf faulty(&e.sim, fo);
  ResilienceOptions ro = FastRetries(/*max_attempts=*/2);
  ResilientWhatIf resilient(&faulty, ro);
  Result<double> fresh = resilient.Cost(w[0], Configuration::Empty());
  ASSERT_TRUE(fresh.ok());
  // Budget exhausted: retries fail, the cached answer is served.
  Result<double> degraded = resilient.Cost(w[0], Configuration::Empty());
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(*degraded, *fresh);
  const WhatIfHealth h = resilient.health();
  EXPECT_EQ(h.degraded, 1);
  EXPECT_EQ(h.failures, 1);
}

TEST(ResilientWhatIfTest, BreakerTripsThenFailsFast) {
  Env e;
  const Workload w = MakeWorkload(6);
  FaultInjectionOptions fo;
  fo.permanent_failure_predicate = [](const Query&) { return true; };
  FaultInjectingWhatIf faulty(&e.sim, fo);
  ResilienceOptions ro = FastRetries();
  ro.degraded_fallback = false;
  ro.breaker.failure_threshold = 3;
  ro.breaker.open_seconds = 60;  // stays open for the whole test
  ResilientWhatIf resilient(&faulty, ro);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(resilient.Cost(w[i], Configuration::Empty()).ok());
  }
  WhatIfHealth h = resilient.health();
  EXPECT_EQ(h.failures, 3);
  EXPECT_EQ(h.breaker_trips, 1);
  EXPECT_TRUE(h.breaker_open);
  const int64_t backend_attempts = faulty.injected_permanent_faults();
  // Open breaker: rejected without touching the backend.
  EXPECT_FALSE(resilient.Cost(w[3], Configuration::Empty()).ok());
  h = resilient.health();
  EXPECT_EQ(h.breaker_fast_fails, 1);
  EXPECT_EQ(faulty.injected_permanent_faults(), backend_attempts);
}

TEST(ResilientWhatIfTest, HalfOpenProbeClosesBreakerAfterHeal) {
  Env e;
  const Workload w = MakeWorkload(4);
  FaultInjectionOptions fo;
  fo.permanent_failure_predicate = [](const Query&) { return true; };
  FaultInjectingWhatIf faulty(&e.sim, fo);
  ResilienceOptions ro = FastRetries();
  ro.degraded_fallback = false;
  ro.breaker.failure_threshold = 2;
  ro.breaker.open_seconds = 0.01;
  ResilientWhatIf resilient(&faulty, ro);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(resilient.Cost(w[i], Configuration::Empty()).ok());
  }
  EXPECT_TRUE(resilient.health().breaker_open);
  faulty.Heal();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The half-open probe goes through, succeeds, and closes the breaker.
  EXPECT_TRUE(resilient.Cost(w[2], Configuration::Empty()).ok());
  EXPECT_FALSE(resilient.health().breaker_open);
}

// --- End-to-end pipeline invariants --------------------------------------

TEST(FaultPipelineTest, FaultFreeDecoratorStackIsBitIdentical) {
  const Workload w = MakeWorkload(12);
  const TuneOutput plain =
      RunCoPhy(w, [](Env& e) -> WhatIfOptimizer* { return &e.sim; });
  ASSERT_TRUE(plain.status.ok()) << plain.status.ToString();

  FaultInjectionOptions fo;  // all faults off
  std::unique_ptr<FaultInjectingWhatIf> faulty;
  std::unique_ptr<ResilientWhatIf> resilient;
  const TuneOutput stacked = RunCoPhy(w, [&](Env& e) -> WhatIfOptimizer* {
    faulty = std::make_unique<FaultInjectingWhatIf>(&e.sim, fo);
    resilient = std::make_unique<ResilientWhatIf>(faulty.get(), FastRetries());
    return resilient.get();
  });
  ASSERT_TRUE(stacked.status.ok()) << stacked.status.ToString();
  EXPECT_EQ(stacked.config, plain.config);
  EXPECT_EQ(stacked.objective, plain.objective);  // exact bits
  const WhatIfHealth h = resilient->health();
  EXPECT_EQ(h.retries, 0);
  EXPECT_EQ(h.failures + h.degraded + h.breaker_fast_fails, 0);
}

TEST(FaultPipelineTest, RetriesMaskTransientsEndToEnd) {
  const Workload w = MakeWorkload(10);
  const TuneOutput plain =
      RunCoPhy(w, [](Env& e) -> WhatIfOptimizer* { return &e.sim; });
  ASSERT_TRUE(plain.status.ok());
  int64_t total_retries = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    FaultInjectionOptions fo;
    fo.seed = seed;
    fo.transient_failure_rate = 0.05;
    std::unique_ptr<FaultInjectingWhatIf> faulty;
    std::unique_ptr<ResilientWhatIf> resilient;
    const TuneOutput got = RunCoPhy(w, [&](Env& e) -> WhatIfOptimizer* {
      faulty = std::make_unique<FaultInjectingWhatIf>(&e.sim, fo);
      resilient =
          std::make_unique<ResilientWhatIf>(faulty.get(), FastRetries(12));
      return resilient.get();
    });
    ASSERT_TRUE(got.status.ok())
        << "seed=" << seed << ": " << got.status.ToString();
    // Once retries mask every transient, the recommendation is the
    // fault-free one bit for bit.
    EXPECT_EQ(got.config, plain.config) << "seed=" << seed;
    EXPECT_EQ(got.objective, plain.objective) << "seed=" << seed;
    EXPECT_EQ(resilient->health().degraded, 0);
    total_retries += resilient->health().retries;
  }
  EXPECT_GT(total_retries, 0);  // the sweep actually exercised faults
}

TEST(FaultPipelineTest, FaultyRunsAreDeterministicPerSeed) {
  const Workload w = MakeWorkload(10);
  // Aggressive faults + modest retries: outcomes may be degraded or
  // errored, but two runs with the same seed agree exactly.
  for (uint64_t seed : {4u, 9u}) {
    TuneOutput first;
    for (int run = 0; run < 2; ++run) {
      FaultInjectionOptions fo;
      fo.seed = seed;
      fo.transient_failure_rate = 0.4;
      std::unique_ptr<FaultInjectingWhatIf> faulty;
      std::unique_ptr<ResilientWhatIf> resilient;
      ResilienceOptions ro = FastRetries(/*max_attempts=*/2);
      const TuneOutput got = RunCoPhy(w, [&](Env& e) -> WhatIfOptimizer* {
        faulty = std::make_unique<FaultInjectingWhatIf>(&e.sim, fo);
        resilient = std::make_unique<ResilientWhatIf>(faulty.get(), ro);
        return resilient.get();
      });
      if (run == 0) {
        first = got;
      } else {
        EXPECT_EQ(got.status.code(), first.status.code()) << "seed=" << seed;
        EXPECT_EQ(got.config, first.config) << "seed=" << seed;
        EXPECT_EQ(got.objective, first.objective) << "seed=" << seed;
      }
    }
  }
}

TEST(FaultPipelineTest, CallBudgetSurfacesAsResourceExhausted) {
  Env e;
  const Workload w = MakeWorkload(10);
  FaultInjectionOptions fo;
  fo.call_budget = 20;  // far fewer than Prepare needs
  FaultInjectingWhatIf faulty(&e.sim, fo);
  CoPhy advisor(&faulty, &e.pool, w, TestOptions());
  const Status s = advisor.Prepare();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(FaultPipelineTest, DeadlineTurnsInjectedLatencyIntoTimeout) {
  Env e;
  const Workload w = MakeWorkload(10);
  FaultInjectionOptions fo;
  fo.injected_latency_seconds = 0.002;
  FaultInjectingWhatIf faulty(&e.sim, fo);
  CoPhyOptions opts = TestOptions();
  opts.prepare.deadline_seconds = 0.02;  // ~10 backend calls fit
  CoPhyAdvisor advisor(&faulty, &e.pool, w, opts);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const AdvisorResult result = advisor.Recommend(cs);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(result.timed_out);
}

// --- Seeded sweep: every combination returns cleanly ---------------------

struct SweepCase {
  double rate = 0.0;
  int64_t budget = -1;
  double latency = 0.0;
  double deadline = std::numeric_limits<double>::infinity();
  int threads = 1;
};

TEST(FaultSweepTest, EverySeededCombinationReturnsCleanly) {
  // CI scaling knob: COPHY_FAULT_SWEEP_SEEDS widens the sweep (the
  // stress job runs 8+ seeds under the sanitizers).
  int num_seeds = 3;
  if (const char* env = std::getenv("COPHY_FAULT_SWEEP_SEEDS")) {
    num_seeds = std::max(1, std::atoi(env));
  }
  const Workload w = MakeWorkload(8);
  const SweepCase cases[] = {
      {0.0, -1, 0.0, std::numeric_limits<double>::infinity(), 1},
      {0.05, -1, 0.0, std::numeric_limits<double>::infinity(), 1},
      {0.3, -1, 0.0, std::numeric_limits<double>::infinity(), 1},
      {0.9, -1, 0.0, std::numeric_limits<double>::infinity(), 1},
      {0.3, 400, 0.0, std::numeric_limits<double>::infinity(), 1},
      {0.1, -1, 0.0005, 0.05, 1},
      // Parallel Prepare: clean-outcome invariants only (the budget
      // countdown and attempt counters are interleaving-dependent).
      {0.3, -1, 0.0, std::numeric_limits<double>::infinity(), 4},
      {0.5, 300, 0.0, std::numeric_limits<double>::infinity(), 4},
  };
  for (int seed = 1; seed <= num_seeds; ++seed) {
    for (const SweepCase& c : cases) {
      Env e;
      FaultInjectionOptions fo;
      fo.seed = static_cast<uint64_t>(seed);
      fo.transient_failure_rate = c.rate;
      fo.call_budget = c.budget;
      fo.injected_latency_seconds = c.latency;
      FaultInjectingWhatIf faulty(&e.sim, fo);
      ResilienceOptions ro = FastRetries(/*max_attempts=*/3);
      ResilientWhatIf resilient(&faulty, ro);
      CoPhyOptions opts = TestOptions();
      opts.prepare.num_threads = c.threads;
      opts.prepare.deadline_seconds = c.deadline;
      CoPhyAdvisor advisor(&resilient, &e.pool, w, opts);
      ConstraintSet cs;
      const double budget_bytes = 0.5 * e.cat.TotalDataBytes();
      cs.SetStorageBudget(budget_bytes);
      const AdvisorResult result = advisor.Recommend(cs);
      const std::string tag =
          "seed=" + std::to_string(seed) + " rate=" + std::to_string(c.rate) +
          " budget=" + std::to_string(c.budget) +
          " threads=" + std::to_string(c.threads);
      if (result.status.ok()) {
        // A recommendation: feasible, finite, within coverage bounds.
        EXPECT_LE(result.configuration.SizeBytes(e.pool, e.cat),
                  budget_bytes * (1 + 1e-9))
            << tag;
        EXPECT_GE(result.coverage, 0.0) << tag;
        EXPECT_LE(result.coverage, 1.0) << tag;
        if (c.rate == 0.0 && c.budget < 0) {
          EXPECT_FALSE(result.degraded) << tag;
        }
      } else {
        // A clean error: one of the boundary's failure classes.
        const StatusCode code = result.status.code();
        EXPECT_TRUE(code == StatusCode::kTimeout ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kInternal)
            << tag << ": " << result.status.ToString();
        EXPECT_EQ(result.timed_out, code == StatusCode::kTimeout) << tag;
      }
    }
  }
}

// --- Reporting surfaces --------------------------------------------------

TEST(FaultReportTest, PrepareStatsRenderFaultCounters) {
  PrepareStats stats;
  std::string text = RenderPrepareStats(stats);
  EXPECT_EQ(text.find("What-if boundary"), std::string::npos);
  stats.whatif_retries = 4;
  stats.whatif_degraded = 1;
  stats.breaker_trips = 1;
  text = RenderPrepareStats(stats);
  EXPECT_NE(text.find("What-if boundary"), std::string::npos);
  EXPECT_NE(text.find("4 retries"), std::string::npos);
}

TEST(FaultReportTest, SolverActivityRendersDegradedCoverage) {
  SolverActivity activity;
  EXPECT_EQ(RenderSolverActivity(activity).find("DEGRADED"),
            std::string::npos);
  activity.coverage = 0.75;
  activity.shards_quarantined = 1;
  const std::string text = RenderSolverActivity(activity);
  EXPECT_NE(text.find("DEGRADED"), std::string::npos);
  EXPECT_NE(text.find("75.0%"), std::string::npos);
}

}  // namespace
}  // namespace cophy
