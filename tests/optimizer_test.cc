// Unit tests for optimizer/: the cost model, access-path costing (γ),
// interesting orders, template enumeration, and what-if costing.
#include <cmath>
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "optimizer/simulator.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    orders_ = cat_.FindTable("orders");
    custkey_ = cat_.FindColumn(orders_, "o_custkey");
    orderdate_ = cat_.FindColumn(orders_, "o_orderdate");
    totalprice_ = cat_.FindColumn(orders_, "o_totalprice");
  }

  /// SELECT o_totalprice FROM orders WHERE o_custkey = :v
  Query PointQuery(double quantile = 0.3) {
    Query q;
    q.tables = {orders_};
    Predicate p;
    p.column = custkey_;
    p.op = Predicate::Op::kEq;
    p.quantile = quantile;
    q.predicates = {p};
    q.outputs = {{AggFunc::kNone, totalprice_}};
    return q;
  }

  IndexId AddIndex(std::vector<ColumnId> key, std::vector<ColumnId> inc = {}) {
    Index i;
    i.table = cat_.column(key[0]).table;
    i.key_columns = std::move(key);
    i.include_columns = std::move(inc);
    return pool_.Add(i);
  }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  TableId orders_ = kInvalidTable;
  ColumnId custkey_ = kInvalidColumn, orderdate_ = kInvalidColumn,
           totalprice_ = kInvalidColumn;
};

TEST_F(SimulatorTest, SelectiveIndexBeatsScan) {
  const Query q = PointQuery();
  const double scan = sim_->Cost(q, Configuration::Empty()).value();
  const IndexId idx = AddIndex({custkey_});
  const double indexed = sim_->Cost(q, Configuration({idx})).value();
  EXPECT_LT(indexed, scan / 10);  // selective point lookup: huge win
}

TEST_F(SimulatorTest, CoveringIndexBeatsNonCoveringOnWideScans) {
  Query q;
  q.tables = {orders_};
  Predicate p;
  p.column = orderdate_;
  p.op = Predicate::Op::kRange;
  p.quantile = 0.1;
  p.width = 0.4;  // 40% of the table: fetches dominate
  q.predicates = {p};
  q.outputs = {{AggFunc::kSum, totalprice_}};
  const IndexId plain = AddIndex({orderdate_});
  const IndexId covering = AddIndex({orderdate_}, {totalprice_});
  const double c_plain = sim_->Cost(q, Configuration({plain})).value();
  const double c_cov = sim_->Cost(q, Configuration({covering})).value();
  EXPECT_LT(c_cov, c_plain);
}

TEST_F(SimulatorTest, AddingIndexesNeverHurtsSelects) {
  WorkloadOptions o;
  o.num_statements = 15;
  o.seed = 31;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  const IndexId a = AddIndex({custkey_});
  const IndexId b = AddIndex({orderdate_}, {custkey_, totalprice_});
  for (const Query& q : w.statements()) {
    const double none = sim_->Cost(q, Configuration::Empty()).value();
    const double some = sim_->Cost(q, Configuration({a})).value();
    const double more = sim_->Cost(q, Configuration({a, b})).value();
    EXPECT_LE(some, none * (1 + 1e-9));
    EXPECT_LE(more, some * (1 + 1e-9));
  }
}

TEST_F(SimulatorTest, AccessCostInfiniteForIncompatibleOrder) {
  const Query q = PointQuery();
  const IndexId idx = AddIndex({custkey_});
  // The index delivers custkey order (bound) — not totalprice order.
  EXPECT_EQ(sim_->AccessCost(q, 0, {totalprice_}, idx).value(), kInfiniteCost);
  EXPECT_LT(sim_->AccessCost(q, 0, {}, idx).value(), kInfiniteCost);
}

TEST_F(SimulatorTest, BasePathProvidesPrimaryKeyOrder) {
  Query q;
  q.tables = {orders_};
  q.outputs = {{AggFunc::kNone, totalprice_}};
  const ColumnId orderkey = cat_.FindColumn(orders_, "o_orderkey");
  // The clustered PK delivers o_orderkey order for free.
  EXPECT_LT(sim_->AccessCost(q, 0, {orderkey}, kInvalidIndex).value(), kInfiniteCost);
  EXPECT_EQ(sim_->AccessCost(q, 0, {totalprice_}, kInvalidIndex).value(),
            kInfiniteCost);
}

TEST_F(SimulatorTest, EqualityPrefixUnlocksSuffixOrder) {
  const Query q = PointQuery();  // o_custkey = :v
  const IndexId idx = AddIndex({custkey_, orderdate_});
  // With custkey bound, the index delivers orderdate order.
  EXPECT_LT(sim_->AccessCost(q, 0, {orderdate_}, idx).value(), kInfiniteCost);
}

TEST_F(SimulatorTest, OrderSatisfiedByRules) {
  const ColumnId a = 1, b = 2, c = 3;
  EXPECT_TRUE(OrderSatisfiedBy({}, {a, b}, 0));
  EXPECT_TRUE(OrderSatisfiedBy({a}, {a, b}, 0));
  EXPECT_TRUE(OrderSatisfiedBy({a, b}, {a, b}, 0));
  EXPECT_FALSE(OrderSatisfiedBy({b}, {a, b}, 0));
  EXPECT_TRUE(OrderSatisfiedBy({b}, {a, b}, 1));  // a equality-bound
  EXPECT_FALSE(OrderSatisfiedBy({c}, {a, b}, 1));
  EXPECT_FALSE(OrderSatisfiedBy({a, b, c}, {a, b}, 0));
}

TEST_F(SimulatorTest, SlotOutputRowsIndependentOfAccessPath) {
  const Query q = PointQuery(0.4);
  const double rows = sim_->SlotOutputRows(q, 0);
  EXPECT_GT(rows, 0);
  EXPECT_LT(rows, cat_.table(orders_).row_count);
}

TEST_F(SimulatorTest, TemplateEnumerationCountsWhatIfCalls) {
  WorkloadOptions o;
  o.num_statements = 1;
  o.seed = 2;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  const int64_t before = sim_->num_whatif_calls();
  const auto templates = sim_->EnumerateTemplates(w[0]).value();
  ASSERT_FALSE(templates.empty());
  EXPECT_EQ(sim_->num_whatif_calls() - before,
            static_cast<int64_t>(templates.size()));
  for (const TemplatePlan& tp : templates) {
    EXPECT_EQ(tp.slot_orders.size(), w[0].tables.size());
    EXPECT_GT(tp.internal_cost, 0);
  }
}

TEST_F(SimulatorTest, FirstTemplateHasNoOrderRequirements) {
  const Query q = PointQuery();
  const auto templates = sim_->EnumerateTemplates(q).value();
  ASSERT_FALSE(templates.empty());
  for (const OrderSpec& o : templates[0].slot_orders) {
    EXPECT_TRUE(o.empty());
  }
}

TEST_F(SimulatorTest, JoinQueryTemplatesIncludeJoinColumnOrders) {
  const Query q = MakeHomogeneousStatement(cat_, 2, 3);  // orders ⋈ lineitem
  const auto candidates = sim_->SlotOrderCandidates(q);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_GE(candidates[0].size(), 2u);  // none + join column at least
  EXPECT_GE(candidates[1].size(), 2u);
}

TEST_F(SimulatorTest, SystemProfilesPriceDifferently) {
  IndexPool pool_b;
  SystemSimulator sim_b(&cat_, &pool_b, CostModel::SystemB());
  const Query q = PointQuery();
  const double a = sim_->Cost(q, Configuration::Empty()).value();
  const double b = sim_b.Cost(q, Configuration::Empty()).value();
  EXPECT_NE(a, b);
}

TEST_F(SimulatorTest, UpdateCostOnlyForAffectedIndexes) {
  Query u;
  u.kind = StatementKind::kUpdate;
  u.update_table = orders_;
  u.tables = {orders_};
  Predicate p;
  p.column = custkey_;
  p.op = Predicate::Op::kEq;
  p.quantile = 0.2;
  u.predicates = {p};
  u.set_columns = {totalprice_};

  const IndexId touched = AddIndex({orderdate_}, {totalprice_});
  const IndexId untouched = AddIndex({orderdate_}, {custkey_});
  EXPECT_GT(sim_->UpdateCost(touched, u).value(), 0);
  EXPECT_DOUBLE_EQ(sim_->UpdateCost(untouched, u).value(), 0);
  // Index on another table is never affected.
  Index li;
  li.table = cat_.FindTable("lineitem");
  li.key_columns = {cat_.FindColumn(li.table, "l_shipdate")};
  EXPECT_DOUBLE_EQ(sim_->UpdateCost(pool_.Add(li), u).value(), 0);
}

TEST_F(SimulatorTest, UpdateStatementCostIncludesMaintenance) {
  Query u;
  u.kind = StatementKind::kUpdate;
  u.update_table = orders_;
  u.tables = {orders_};
  Predicate p;
  p.column = custkey_;
  p.op = Predicate::Op::kEq;
  p.quantile = 0.2;
  u.predicates = {p};
  u.set_columns = {totalprice_};

  const IndexId helper = AddIndex({custkey_});             // helps the shell
  const IndexId burden = AddIndex({totalprice_});          // pure overhead
  const double with_helper = sim_->Cost(u, Configuration({helper})).value();
  const double with_burden = sim_->Cost(u, Configuration({burden})).value();
  const double base = sim_->Cost(u, Configuration::Empty()).value();
  EXPECT_LT(with_helper, base);            // shell speedup dominates
  EXPECT_GT(with_burden, base);            // maintenance with no benefit
}

TEST_F(SimulatorTest, GroupByOrderEnablesCheaperTemplate) {
  // A query grouping on an indexable column: stream aggregation via an
  // order-providing index must beat hash aggregation + scan.
  Query q;
  q.tables = {orders_};
  q.group_by = {custkey_};
  q.outputs = {{AggFunc::kNone, custkey_}, {AggFunc::kSum, totalprice_}};
  const double scan = sim_->Cost(q, Configuration::Empty()).value();
  const IndexId idx = AddIndex({custkey_}, {totalprice_});
  const double indexed = sim_->Cost(q, Configuration({idx})).value();
  EXPECT_LT(indexed, scan);
}

TEST_F(SimulatorTest, ExplainDescribesPlan) {
  const Query q = PointQuery();
  const IndexId idx = AddIndex({custkey_});
  const std::string plan = sim_->Explain(q, Configuration({idx}));
  EXPECT_NE(plan.find("slot 0"), std::string::npos);
  EXPECT_NE(plan.find("o_custkey"), std::string::npos);
}

TEST_F(SimulatorTest, CostCountsAsWhatIfCall) {
  const Query q = PointQuery();
  const int64_t before = sim_->num_whatif_calls();
  sim_->Cost(q, Configuration::Empty()).value();
  EXPECT_EQ(sim_->num_whatif_calls(), before + 1);
}

/// Property sweep: what-if costs are finite and positive across both
/// workloads, profiles, and skews.
class SimulatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, bool, bool>> {};

TEST_P(SimulatorPropertyTest, CostsFiniteAndPositive) {
  const auto [z, heterogeneous, system_b] = GetParam();
  Catalog cat = MakeTpchCatalog(0.1, z);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool,
                      system_b ? CostModel::SystemB() : CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 12;
  o.seed = 17;
  o.update_fraction = 0.2;
  Workload w = heterogeneous ? MakeHeterogeneousWorkload(cat, o)
                             : MakeHomogeneousWorkload(cat, o);
  for (const Query& q : w.statements()) {
    const double c = sim.Cost(q, Configuration::Empty()).value();
    EXPECT_GT(c, 0) << q.ToString(cat);
    EXPECT_TRUE(std::isfinite(c)) << q.ToString(cat);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.0), ::testing::Bool(),
                       ::testing::Bool()));

}  // namespace
}  // namespace cophy
