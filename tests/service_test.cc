// Multi-tenant advisor service: per-lane serialization and backpressure
// in the SessionExecutor, interleaved multi-tenant traffic whose final
// recommendations are bit-identical to a serial replay of each tenant's
// own op stream, and the cross-session plan cache — recommendations
// bit-identical cache on vs off while the cache-on service performs
// strictly fewer what-if optimizer calls once tenants overlap. The
// interleaved tests run under TSan in CI (concurrency job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/simulator.h"
#include "service/service.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct TestEnv {
  Catalog cat;
  IndexPool pool;
  std::unique_ptr<SystemSimulator> sim;

  TestEnv() {
    cat = MakeTpchCatalog(0.1, 0.0);
    sim = std::make_unique<SystemSimulator>(&cat, &pool, CostModel::SystemA());
  }

  ConstraintSet Budget(double m) const {
    ConstraintSet cs;
    cs.SetStorageBudget(m * cat.TotalDataBytes());
    return cs;
  }
};

CoPhyOptions TestOptions() {
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 3000;
  return opts;
}

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

std::vector<IndexId> SortedIds(const Recommendation& rec) {
  std::vector<IndexId> ids = rec.configuration.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExpectBitIdentical(const Recommendation& a, const Recommendation& b) {
  EXPECT_EQ(SortedIds(a), SortedIds(b));
  EXPECT_EQ(Bits(a.objective), Bits(b.objective));
  EXPECT_EQ(Bits(a.lower_bound), Bits(b.lower_bound));
  EXPECT_EQ(Bits(a.gap), Bits(b.gap));
}

/// Statement i of tenant t; positions hitting the overlap percentage
/// draw a (template, seed) shared by every tenant, the rest are
/// tenant-private (same scheme as bench_service).
Query TenantStatement(const Catalog& cat, int tenant, int i,
                      int overlap_pct = 75) {
  const bool shared = (i * 37 + 11) % 100 < overlap_pct;
  const int tmpl = i % NumHomogeneousTemplates();
  const uint64_t seed =
      shared ? 1000 + static_cast<uint64_t>(i)
             : 777'000'000ULL + static_cast<uint64_t>(tenant) * 100'000 + i;
  return MakeHomogeneousStatement(cat, tmpl, seed);
}

/// A tenant's deterministic op stream: initial batch + cold Tune, then
/// `rounds` of (remove two oldest, add two fresh, warm Retune).
std::vector<ServiceOp> MakeTrace(const TestEnv& env, int tenant, int rounds,
                                 int overlap_pct = 75) {
  constexpr int kInitial = 8;
  const ConstraintSet budget = env.Budget(0.5);
  std::vector<ServiceOp> trace;
  ServiceOp add;
  add.kind = ServiceOp::Kind::kAddStatements;
  for (int i = 0; i < kInitial; ++i) {
    add.statements.push_back(TenantStatement(env.cat, tenant, i, overlap_pct));
  }
  trace.push_back(std::move(add));
  ServiceOp tune;
  tune.kind = ServiceOp::Kind::kTune;
  tune.constraints = budget;
  trace.push_back(std::move(tune));
  for (int r = 0; r < rounds; ++r) {
    ServiceOp remove;
    remove.kind = ServiceOp::Kind::kRemoveStatements;
    remove.ids = {2 * r, 2 * r + 1};
    trace.push_back(std::move(remove));
    ServiceOp grow;
    grow.kind = ServiceOp::Kind::kAddStatements;
    grow.statements = {
        TenantStatement(env.cat, tenant, kInitial + 2 * r, overlap_pct),
        TenantStatement(env.cat, tenant, kInitial + 2 * r + 1, overlap_pct)};
    trace.push_back(std::move(grow));
    ServiceOp retune;
    retune.kind = ServiceOp::Kind::kRetune;
    retune.constraints = budget;
    trace.push_back(std::move(retune));
  }
  return trace;
}

/// A drifting op stream: MakeTrace's churn plus one epoch tick per
/// round, so decayed weights, the drift detector, and the hysteresis
/// scheduler are all live while tenants interleave. The rotating
/// template index of TenantStatement shifts the class mix every round.
std::vector<ServiceOp> MakeDriftTrace(const TestEnv& env, int tenant,
                                      int rounds, int overlap_pct = 75) {
  std::vector<ServiceOp> trace = MakeTrace(env, tenant, rounds, overlap_pct);
  // Insert an epoch tick before each round's remove/add/retune triple
  // (rounds start after the initial add + cold Tune).
  std::vector<ServiceOp> out(trace.begin(), trace.begin() + 2);
  for (int r = 0; r < rounds; ++r) {
    ServiceOp tick;
    tick.kind = ServiceOp::Kind::kAdvanceEpoch;
    tick.epoch_ticks = 1;
    out.push_back(std::move(tick));
    for (int i = 0; i < 3; ++i) out.push_back(trace[2 + 3 * r + i]);
  }
  return out;
}

/// Pushes every tenant's trace through the service round-robin (op 0 of
/// every tenant, then op 1, ...) so lanes genuinely interleave, and
/// returns each tenant's final recommendation.
std::vector<Recommendation> RunInterleaved(
    AdvisorService& service, const std::vector<std::vector<ServiceOp>>& traces) {
  size_t max_len = 0;
  for (const auto& t : traces) max_len = std::max(max_len, t.size());
  std::vector<std::vector<std::future<OpResult>>> futures(traces.size());
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t t = 0; t < traces.size(); ++t) {
      if (i >= traces[t].size()) continue;
      futures[t].push_back(service.Submit("tenant-" + std::to_string(t),
                                          traces[t][i]));
    }
  }
  std::vector<Recommendation> finals(traces.size());
  for (size_t t = 0; t < traces.size(); ++t) {
    for (size_t i = 0; i < futures[t].size(); ++i) {
      OpResult res = futures[t][i].get();
      EXPECT_TRUE(res.status.ok()) << "tenant " << t << " op " << i << ": "
                                   << res.status.ToString();
      if (traces[t][i].kind == ServiceOp::Kind::kTune ||
          traces[t][i].kind == ServiceOp::Kind::kRetune) {
        finals[t] = std::move(res.recommendation);
      }
    }
  }
  return finals;
}

/// Serial replay of one tenant's trace on a fresh single-threaded
/// session (no executor, no shared cache) against the same pool and
/// backend, returning the final recommendation.
Recommendation ReplaySerial(TestEnv& env, const std::vector<ServiceOp>& trace,
                            DriftOptions drift = {}) {
  SessionOptions so;
  so.tuning = TestOptions();
  so.tuning.prepare.num_threads = 1;
  so.drift = drift;
  AdvisorSession session(env.sim.get(), &env.pool, so);
  Recommendation last;
  for (const ServiceOp& op : trace) {
    switch (op.kind) {
      case ServiceOp::Kind::kAddStatements:
        session.AddStatements(op.statements);
        break;
      case ServiceOp::Kind::kRemoveStatements:
        EXPECT_TRUE(session.RemoveStatements(op.ids).ok());
        break;
      case ServiceOp::Kind::kTune:
        last = session.Tune(op.constraints);
        EXPECT_TRUE(last.status.ok()) << last.status.ToString();
        break;
      case ServiceOp::Kind::kRetune:
        last = session.Retune(op.constraints);
        EXPECT_TRUE(last.status.ok()) << last.status.ToString();
        break;
      case ServiceOp::Kind::kAdvanceEpoch:
        session.AdvanceEpoch(op.epoch_ticks);
        break;
      case ServiceOp::Kind::kFeedback:
        switch (op.feedback) {
          case ServiceOp::Feedback::kAccept:
            EXPECT_TRUE(session.Accept(op.index).ok());
            break;
          case ServiceOp::Feedback::kVeto:
            EXPECT_TRUE(session.Veto(op.index).ok());
            break;
          case ServiceOp::Feedback::kClear:
            EXPECT_TRUE(session.ClearFeedback(op.index).ok());
            break;
        }
        break;
    }
  }
  return last;
}

// --- SessionExecutor ------------------------------------------------------

TEST(SessionExecutorTest, SerializesPerLaneInterleavesLanes) {
  ThreadPool pool(4);
  SessionExecutor ex(&pool, /*max_queued_per_lane=*/0);
  constexpr int kLanes = 4, kTasks = 50;
  std::vector<std::vector<int>> seen(kLanes);
  std::mutex mu;
  for (int i = 0; i < kTasks; ++i) {
    for (int lane = 0; lane < kLanes; ++lane) {
      ASSERT_TRUE(ex.Submit("lane-" + std::to_string(lane), [&, lane, i] {
                      std::lock_guard<std::mutex> lock(mu);
                      seen[lane].push_back(i);
                    }).ok());
    }
  }
  ex.Drain();
  for (int lane = 0; lane < kLanes; ++lane) {
    ASSERT_EQ(seen[lane].size(), static_cast<size_t>(kTasks));
    for (int i = 0; i < kTasks; ++i) {
      // FIFO per lane: submission order is execution order.
      EXPECT_EQ(seen[lane][i], i);
    }
  }
  EXPECT_EQ(ex.submitted(), kLanes * kTasks);
  EXPECT_EQ(ex.completed(), kLanes * kTasks);
  EXPECT_EQ(ex.rejected(), 0);
}

TEST(SessionExecutorTest, BackpressureRejectsBeyondCap) {
  ThreadPool pool(2);  // one real worker
  SessionExecutor ex(&pool, /*max_queued_per_lane=*/2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> ran{0};
  // First task blocks the lane; the second queues; the third must be
  // rejected without running.
  ASSERT_TRUE(ex.Submit("t", [opened, &ran] {
                  opened.wait();
                  ran.fetch_add(1);
                }).ok());
  ASSERT_TRUE(ex.Submit("t", [&ran] { ran.fetch_add(1); }).ok());
  const Status rejected = ex.Submit("t", [&ran] { ran.fetch_add(1); });
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  // A different lane is unaffected by the full one.
  ASSERT_TRUE(ex.Submit("u", [] {}).ok());
  gate.set_value();
  ex.Drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ex.submitted(), 3);
  EXPECT_EQ(ex.completed(), 3);
  EXPECT_EQ(ex.rejected(), 1);
}

TEST(SessionExecutorTest, InlineOnSizeOnePool) {
  ThreadPool pool(1);
  SessionExecutor ex(&pool, 4);
  int ran = 0;
  ASSERT_TRUE(ex.Submit("t", [&] { ++ran; }).ok());
  // Size-1 pool: the task ran inline inside Submit.
  EXPECT_EQ(ran, 1);
  ex.Drain();
  EXPECT_EQ(ex.completed(), 1);
}

// --- AdvisorService -------------------------------------------------------

TEST(ServiceTest, InterleavedMatchesSerialReplayPerTenant) {
  TestEnv env;
  constexpr int kTenants = 4;
  std::vector<std::vector<ServiceOp>> traces;
  for (int t = 0; t < kTenants; ++t) {
    traces.push_back(MakeTrace(env, t, /*rounds=*/2));
  }
  ServiceOptions so;
  so.num_threads = 0;  // hardware
  so.share_plan_cache = true;
  so.session.tuning = TestOptions();
  std::vector<Recommendation> finals;
  {
    AdvisorService service(env.sim.get(), &env.pool, so);
    finals = RunInterleaved(service, traces);
    service.Drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.num_tenants, kTenants);
    EXPECT_EQ(stats.submitted, stats.completed);
    EXPECT_EQ(stats.rejected, 0);
  }
  // Serial replay of each tenant's own op stream on the same pool +
  // backend must land on the exact same recommendation: concurrent
  // dispatch and the shared cache change the schedule, never the math.
  for (int t = 0; t < kTenants; ++t) {
    const Recommendation replay = ReplaySerial(env, traces[t]);
    SCOPED_TRACE("tenant " + std::to_string(t));
    ExpectBitIdentical(finals[t], replay);
  }
}

TEST(ServiceTest, CacheOnOffBitIdenticalWithStrictlyFewerWhatIfCalls) {
  constexpr int kTenants = 3;  // >= 2 overlapping tenants
  auto run = [&](bool cache_on, int64_t* whatif_calls,
                 PlanCacheStats* cache_stats,
                 int64_t* folded_template_hits) -> std::vector<Recommendation> {
    TestEnv env;  // fresh pool + simulator: counters start at zero
    std::vector<std::vector<ServiceOp>> traces;
    for (int t = 0; t < kTenants; ++t) {
      traces.push_back(MakeTrace(env, t, /*rounds=*/1));
    }
    ServiceOptions so;
    so.num_threads = 0;
    so.share_plan_cache = cache_on;
    so.session.tuning = TestOptions();
    AdvisorService service(env.sim.get(), &env.pool, so);
    std::vector<Recommendation> finals = RunInterleaved(service, traces);
    service.Drain();
    *whatif_calls = env.sim->num_whatif_calls();
    *cache_stats = service.stats().plan_cache;
    *folded_template_hits = 0;
    for (int t = 0; t < kTenants; ++t) {
      AdvisorSession* session =
          service.FindSession("tenant-" + std::to_string(t));
      if (session == nullptr) {
        ADD_FAILURE() << "tenant " << t << " has no session";
        continue;
      }
      *folded_template_hits +=
          session->prepare_stats().plan_cache_template_hits;
    }
    return finals;
  };

  int64_t calls_off = 0, calls_on = 0, folded_off = 0, folded_on = 0;
  PlanCacheStats stats_off, stats_on;
  const std::vector<Recommendation> off =
      run(false, &calls_off, &stats_off, &folded_off);
  const std::vector<Recommendation> on =
      run(true, &calls_on, &stats_on, &folded_on);

  // Same tenant, same trace -> bit-identical recommendation either way.
  for (int t = 0; t < kTenants; ++t) {
    SCOPED_TRACE("tenant " + std::to_string(t));
    ExpectBitIdentical(off[t], on[t]);
  }
  // The tentpole's perf claim, counter-asserted: overlapping tenants
  // resolve shared statement classes from the cache, so the cache-on
  // service performs strictly fewer what-if optimizer calls.
  EXPECT_LT(calls_on, calls_off);
  EXPECT_GT(stats_on.template_hits, 0);
  EXPECT_GT(stats_on.Hits(), 0);
  EXPECT_EQ(stats_off.Lookups(), 0);
  // The per-session PrepareStats fold sees the same hits the cache does.
  EXPECT_EQ(folded_off, 0);
  EXPECT_GT(folded_on, 0);
}

TEST(ServiceTest, DriftingTraceCacheOnOffBitIdentical) {
  // The plan cache keys on structure only (template signatures + γ walk
  // digests are weight- and therefore decay-blind), so a drifting trace
  // with live decay must solve bit-identically with the cache on or
  // off, and hysteresis/feedback state never leaks through the cache.
  constexpr int kTenants = 3;
  auto run = [&](bool cache_on, int64_t* whatif_calls,
                 PlanCacheStats* cache_stats) -> std::vector<Recommendation> {
    TestEnv env;
    std::vector<std::vector<ServiceOp>> traces;
    for (int t = 0; t < kTenants; ++t) {
      traces.push_back(MakeDriftTrace(env, t, /*rounds=*/2));
    }
    ServiceOptions so;
    so.num_threads = 0;
    so.share_plan_cache = cache_on;
    so.session.tuning = TestOptions();
    so.session.drift.half_life_epochs = 1.0;
    so.session.drift.materialize_after = 2;
    so.session.drift.drop_after = 2;
    AdvisorService service(env.sim.get(), &env.pool, so);
    std::vector<Recommendation> finals = RunInterleaved(service, traces);
    service.Drain();
    *whatif_calls = env.sim->num_whatif_calls();
    *cache_stats = service.stats().plan_cache;
    return finals;
  };

  int64_t calls_off = 0, calls_on = 0;
  PlanCacheStats stats_off, stats_on;
  const std::vector<Recommendation> off = run(false, &calls_off, &stats_off);
  const std::vector<Recommendation> on = run(true, &calls_on, &stats_on);
  for (int t = 0; t < kTenants; ++t) {
    SCOPED_TRACE("tenant " + std::to_string(t));
    ExpectBitIdentical(off[t], on[t]);
    // The hysteresis decision is session state, not cache state: the
    // applied sets must agree too.
    EXPECT_EQ(off[t].materialization.applied, on[t].materialization.applied);
    EXPECT_EQ(Bits(off[t].prepare.drift_score),
              Bits(on[t].prepare.drift_score));
  }
  EXPECT_LT(calls_on, calls_off);
  EXPECT_GT(stats_on.Hits(), 0);
  EXPECT_EQ(stats_off.Lookups(), 0);
}

TEST(ServiceTest, DriftingTraceMatchesSerialReplayPerTenant) {
  TestEnv env;
  constexpr int kTenants = 3;
  std::vector<std::vector<ServiceOp>> traces;
  for (int t = 0; t < kTenants; ++t) {
    traces.push_back(MakeDriftTrace(env, t, /*rounds=*/2));
  }
  // One tenant also exercises the feedback verbs mid-trace: veto an
  // arbitrary pool index before its final retune (id 0 exists once any
  // tenant prepared — ops run in lane order after the cold Tune).
  ServiceOp veto;
  veto.kind = ServiceOp::Kind::kFeedback;
  veto.feedback = ServiceOp::Feedback::kVeto;
  veto.index = 0;
  traces[0].insert(traces[0].end() - 1, veto);

  ServiceOptions so;
  so.num_threads = 0;
  so.session.tuning = TestOptions();
  so.session.drift.half_life_epochs = 1.0;
  std::vector<Recommendation> finals;
  {
    AdvisorService service(env.sim.get(), &env.pool, so);
    finals = RunInterleaved(service, traces);
    service.Drain();
  }
  EXPECT_FALSE(finals[0].configuration.Contains(0));
  for (int t = 0; t < kTenants; ++t) {
    const Recommendation replay =
        ReplaySerial(env, traces[t], so.session.drift);
    SCOPED_TRACE("tenant " + std::to_string(t));
    ExpectBitIdentical(finals[t], replay);
    EXPECT_EQ(finals[t].materialization.applied,
              replay.materialization.applied);
  }
}

TEST(ServiceTest, BackpressureResolvesFutureWithResourceExhausted) {
  TestEnv env;
  ServiceOptions so;
  so.num_threads = 2;  // real worker: ops queue instead of running inline
  so.max_inflight_per_tenant = 1;
  so.session.tuning = TestOptions();
  AdvisorService service(env.sim.get(), &env.pool, so);

  std::vector<Query> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(TenantStatement(env.cat, 0, i));
  EXPECT_TRUE(service.AddStatements("t", batch).get().status.ok());
  // The Tune occupies the lane the instant Submit accepts it (the
  // in-flight count drops only on completion, and a cold Tune is far
  // slower than the back-to-back Submit), so the second op must bounce.
  std::future<OpResult> first = service.Tune("t", env.Budget(0.5));
  std::future<OpResult> second = service.Retune("t", env.Budget(0.5));
  const OpResult bounced = second.get();
  EXPECT_EQ(bounced.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(first.get().status.ok());
  service.Drain();
  EXPECT_EQ(service.stats().rejected, 1);
  // With the lane idle again the tenant is welcome back.
  EXPECT_TRUE(service.Tune("t", env.Budget(0.5)).get().status.ok());
}

TEST(ServiceTest, HammerManyTenantsInterleaved) {
  // Race-hunting workload for the TSan job: more tenants than workers,
  // every tenant churning add/remove/retune concurrently through the
  // shared pool, cache and executor. Correctness assertions ride along
  // (every op OK, counters consistent); the sanitizer owns the rest.
  TestEnv env;
  constexpr int kTenants = 6;
  std::vector<std::vector<ServiceOp>> traces;
  for (int t = 0; t < kTenants; ++t) {
    traces.push_back(MakeTrace(env, t, /*rounds=*/2, /*overlap_pct=*/50));
  }
  ServiceOptions so;
  so.num_threads = 4;
  so.session.tuning = TestOptions();
  AdvisorService service(env.sim.get(), &env.pool, so);
  RunInterleaved(service, traces);
  service.Drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.num_tenants, kTenants);
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GT(stats.plan_cache.Hits(), 0);
}

TEST(ServiceTest, HammerDriftingTenantsInterleaved) {
  // TSan target: decay-at-merge (epoch ticks re-weighting every live
  // statement lazily) racing with concurrent tenant submits through the
  // shared pool and plan cache, plus feedback verbs mid-stream.
  TestEnv env;
  constexpr int kTenants = 6;
  std::vector<std::vector<ServiceOp>> traces;
  for (int t = 0; t < kTenants; ++t) {
    traces.push_back(MakeDriftTrace(env, t, /*rounds=*/2, /*overlap_pct=*/50));
    if (t % 2 == 0) {
      ServiceOp veto;
      veto.kind = ServiceOp::Kind::kFeedback;
      veto.feedback = ServiceOp::Feedback::kVeto;
      veto.index = t;  // pool ids 0..5 exist once any tenant prepared
      traces[t].insert(traces[t].end() - 1, veto);
    }
  }
  ServiceOptions so;
  so.num_threads = 4;
  so.session.tuning = TestOptions();
  so.session.drift.half_life_epochs = 1.0;
  so.session.drift.materialize_after = 2;
  so.session.drift.drop_after = 2;
  AdvisorService service(env.sim.get(), &env.pool, so);
  const std::vector<Recommendation> finals = RunInterleaved(service, traces);
  service.Drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.num_tenants, kTenants);
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_EQ(stats.rejected, 0);
  for (int t = 0; t < kTenants; t += 2) {
    EXPECT_FALSE(finals[t].configuration.Contains(t)) << "tenant " << t;
  }
}

}  // namespace
}  // namespace cophy
