// Unit tests for index/: definitions, size estimation, the pool, and
// CGen candidate generation.
#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "index/candidates.h"
#include "index/index.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    orders_ = cat_.FindTable("orders");
    custkey_ = cat_.FindColumn(orders_, "o_custkey");
    orderdate_ = cat_.FindColumn(orders_, "o_orderdate");
    totalprice_ = cat_.FindColumn(orders_, "o_totalprice");
  }
  Index Make(std::vector<ColumnId> key, std::vector<ColumnId> inc = {}) {
    Index i;
    i.table = orders_;
    i.key_columns = std::move(key);
    i.include_columns = std::move(inc);
    return i;
  }
  Catalog cat_;
  TableId orders_ = kInvalidTable;
  ColumnId custkey_ = kInvalidColumn, orderdate_ = kInvalidColumn,
           totalprice_ = kInvalidColumn;
};

TEST_F(IndexTest, SameDefinitionComparesKeyAndIncludes) {
  EXPECT_TRUE(Make({custkey_}).SameDefinition(Make({custkey_})));
  EXPECT_FALSE(Make({custkey_}).SameDefinition(Make({orderdate_})));
  EXPECT_FALSE(
      Make({custkey_, orderdate_}).SameDefinition(Make({orderdate_, custkey_})));
  EXPECT_FALSE(Make({custkey_}, {totalprice_}).SameDefinition(Make({custkey_})));
}

TEST_F(IndexTest, CoversChecksKeyAndInclude) {
  const Index i = Make({custkey_}, {totalprice_});
  EXPECT_TRUE(i.Covers({custkey_}));
  EXPECT_TRUE(i.Covers({custkey_, totalprice_}));
  EXPECT_FALSE(i.Covers({orderdate_}));
  Index clustered = Make({custkey_});
  clustered.clustered = true;
  EXPECT_TRUE(clustered.Covers({orderdate_, totalprice_}));
}

TEST_F(IndexTest, SizeGrowsWithColumns) {
  const double narrow = IndexSizeBytes(Make({custkey_}), cat_);
  const double wide = IndexSizeBytes(Make({custkey_, orderdate_}), cat_);
  const double covering =
      IndexSizeBytes(Make({custkey_}, {totalprice_, orderdate_}), cat_);
  EXPECT_GT(wide, narrow);
  EXPECT_GT(covering, wide);
}

TEST_F(IndexTest, ClusteredIndexSizedAsTable) {
  Index c = Make({custkey_});
  c.clustered = true;
  EXPECT_DOUBLE_EQ(IndexLeafPages(c, cat_), cat_.TablePages(orders_));
}

TEST_F(IndexTest, SizeScalesWithRowCount) {
  Catalog big = MakeTpchCatalog(1.0, 0.0);
  const TableId ot = big.FindTable("orders");
  Index idx;
  idx.table = ot;
  idx.key_columns = {big.FindColumn(ot, "o_custkey")};
  Index small_idx = Make({custkey_});
  EXPECT_NEAR(IndexSizeBytes(idx, big) / IndexSizeBytes(small_idx, cat_), 10.0,
              1.0);
}

TEST_F(IndexTest, PoolDeduplicates) {
  IndexPool pool;
  const IndexId a = pool.Add(Make({custkey_}));
  const IndexId b = pool.Add(Make({custkey_}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 1);
  const IndexId c = pool.Add(Make({orderdate_}));
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.size(), 2);
}

TEST_F(IndexTest, PoolCanonicalizesIncludeOrder) {
  IndexPool pool;
  const IndexId a = pool.Add(Make({custkey_}, {orderdate_, totalprice_}));
  const IndexId b = pool.Add(Make({custkey_}, {totalprice_, orderdate_}));
  EXPECT_EQ(a, b);
}

TEST_F(IndexTest, PoolOnTable) {
  IndexPool pool;
  pool.Add(Make({custkey_}));
  Index li;
  li.table = cat_.FindTable("lineitem");
  li.key_columns = {cat_.FindColumn(li.table, "l_shipdate")};
  pool.Add(li);
  EXPECT_EQ(pool.OnTable(orders_).size(), 1u);
  EXPECT_EQ(pool.OnTable(li.table).size(), 1u);
  EXPECT_TRUE(pool.OnTable(cat_.FindTable("part")).empty());
}

TEST_F(IndexTest, ToStringMentionsTableAndColumns) {
  const std::string s = Make({custkey_}, {totalprice_}).ToString(cat_);
  EXPECT_NE(s.find("orders"), std::string::npos);
  EXPECT_NE(s.find("o_custkey"), std::string::npos);
  EXPECT_NE(s.find("INCLUDE"), std::string::npos);
}

// --- CGen --------------------------------------------------------------

class CandidateTest : public ::testing::Test {
 protected:
  Catalog cat_ = MakeTpchCatalog(0.1, 0.0);
};

TEST_F(CandidateTest, SingleColumnCandidatesForPredicates) {
  const Query q = MakeHomogeneousStatement(cat_, 13, 3);  // orders lookup
  const auto cands = CandidatesForQuery(q, cat_, CandidateOptions{});
  ASSERT_FALSE(cands.empty());
  const TableId orders = cat_.FindTable("orders");
  const ColumnId custkey = cat_.FindColumn(orders, "o_custkey");
  bool found_single = false;
  for (const Index& idx : cands) {
    EXPECT_TRUE(q.References(idx.table) ||
                (q.IsUpdate() && idx.table == q.update_table));
    if (idx.key_columns == std::vector<ColumnId>{custkey} &&
        idx.include_columns.empty()) {
      found_single = true;
    }
  }
  EXPECT_TRUE(found_single);
}

TEST_F(CandidateTest, CoveringVariantsCoverTheQuery) {
  const Query q = MakeHomogeneousStatement(cat_, 13, 3);
  const auto cands = CandidatesForQuery(q, cat_, CandidateOptions{});
  // At least one fully covering variant per referenced table with
  // INCLUDE candidates; partial-INCLUDE variants are allowed besides.
  bool any_fully_covering = false;
  for (const Index& idx : cands) {
    if (!idx.include_columns.empty() &&
        idx.Covers(q.ColumnsUsed(idx.table, cat_))) {
      any_fully_covering = true;
    }
  }
  EXPECT_TRUE(any_fully_covering);
}

TEST_F(CandidateTest, ExtraVariantsWidenTheSet) {
  const Query q = MakeHomogeneousStatement(cat_, 1, 3);
  CandidateOptions rich, lean;
  lean.extra_variants = false;
  EXPECT_GT(CandidatesForQuery(q, cat_, rich).size(),
            CandidatesForQuery(q, cat_, lean).size());
}

TEST_F(CandidateTest, NoDuplicateDefinitions) {
  const Query q = MakeHomogeneousStatement(cat_, 1, 3);
  const auto cands = CandidatesForQuery(q, cat_, CandidateOptions{});
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = i + 1; j < cands.size(); ++j) {
      EXPECT_FALSE(cands[i].SameDefinition(cands[j]));
    }
  }
}

TEST_F(CandidateTest, MaxKeyColumnsRespected) {
  CandidateOptions opts;
  opts.max_key_columns = 1;
  const Query q = MakeHomogeneousStatement(cat_, 4, 3);  // Q6: 3 ranges
  for (const Index& idx : CandidatesForQuery(q, cat_, opts)) {
    EXPECT_LE(idx.key_columns.size(), 3u);  // singles + eq-pairs are capped
  }
}

TEST_F(CandidateTest, GenerateCandidatesReturnsAllForWorkload) {
  WorkloadOptions o;
  o.num_statements = 30;
  o.seed = 12;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  IndexPool pool;
  const auto first = GenerateCandidates(w, cat_, CandidateOptions{}, pool);
  EXPECT_EQ(static_cast<int>(first.size()), pool.size());
  // Re-running over the same pool returns the same (already present) set.
  const auto second = GenerateCandidates(w, cat_, CandidateOptions{}, pool);
  EXPECT_EQ(first.size(), second.size());
  EXPECT_EQ(pool.size(), static_cast<int>(first.size()));
}

TEST_F(CandidateTest, DbaIndexesInjected) {
  Workload w;
  Query q = MakeHomogeneousStatement(cat_, 0, 3);
  w.Add(q);
  Index dba;
  dba.table = cat_.FindTable("region");
  dba.key_columns = {cat_.FindColumn(dba.table, "r_name")};
  IndexPool pool;
  const auto ids =
      GenerateCandidates(w, cat_, CandidateOptions{}, pool, {dba});
  bool found = false;
  for (IndexId id : ids) found |= pool[id].SameDefinition(dba);
  EXPECT_TRUE(found);
}

TEST_F(CandidateTest, RandomPaddingReachesTarget) {
  IndexPool pool;
  Rng rng(77);
  const auto ids = PadWithRandomIndexes(cat_, 200, rng, pool);
  EXPECT_EQ(ids.size(), 200u);
  EXPECT_EQ(pool.size(), 200);
  for (IndexId id : ids) {
    EXPECT_FALSE(pool[id].key_columns.empty());
    for (ColumnId c : pool[id].key_columns) {
      EXPECT_EQ(cat_.column(c).table, pool[id].table);
    }
  }
}

TEST_F(CandidateTest, OrderCandidatesToggle) {
  CandidateOptions with, without;
  without.order_candidates = false;
  const Query q = MakeHomogeneousStatement(cat_, 1, 3);  // Q3: join + group
  const auto a = CandidatesForQuery(q, cat_, with);
  const auto b = CandidatesForQuery(q, cat_, without);
  EXPECT_GT(a.size(), b.size());
}

}  // namespace
}  // namespace cophy
