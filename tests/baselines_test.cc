// Tests for baselines/: the evaluation harness and the three competitor
// advisors (ILP, Tool-A-like relaxation, Tool-B-like greedy), plus the
// qualitative relationships the paper's comparison rests on.
#include <gtest/gtest.h>

#include "optimizer/simulator.h"
#include "baselines/advisor.h"
#include "baselines/cophy_advisor.h"
#include "baselines/greedy_advisor.h"
#include "baselines/ilp_advisor.h"
#include "baselines/relaxation_advisor.h"
#include "catalog/catalog.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void Prepare(int num_queries, uint64_t seed = 7, bool het = false) {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    pool_ = IndexPool();
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = num_queries;
    o.seed = seed;
    w_ = het ? MakeHeterogeneousWorkload(cat_, o)
             : MakeHomogeneousWorkload(cat_, o);
    cs_ = ConstraintSet();
    cs_.SetStorageBudget(cat_.TotalDataBytes());
  }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  Workload w_;
  ConstraintSet cs_;
};

TEST_F(BaselinesTest, EvaluationMetricBasics) {
  Prepare(10);
  EXPECT_DOUBLE_EQ(Perf(*sim_, w_, Configuration::Empty()), 0.0);
  const double base = WorkloadCost(*sim_, w_, Configuration::Empty());
  EXPECT_GT(base, 0);
}

TEST_F(BaselinesTest, CoPhyAdvisorAdapter) {
  Prepare(12);
  CoPhyOptions opts;
  opts.node_limit = 2000;
  CoPhyAdvisor advisor(sim_.get(), &pool_, w_, opts);
  const AdvisorResult r = advisor.Recommend(cs_);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(advisor.name(), "cophy");
  EXPECT_GT(r.candidates_considered, 0);
  EXPECT_GT(r.whatif_calls, 0);  // INUM preprocessing calls
  EXPECT_GT(Perf(*sim_, w_, r.configuration), 0.1);
  EXPECT_LE(r.configuration.SizeBytes(pool_, cat_), cat_.TotalDataBytes());
}

TEST_F(BaselinesTest, IlpAdvisorProducesFeasibleQuality) {
  Prepare(12);
  IlpOptions opts;
  opts.node_limit = 2000;
  IlpAdvisor advisor(sim_.get(), &pool_, w_, opts);
  const AdvisorResult r = advisor.Recommend(cs_);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(advisor.name(), "ilp");
  EXPECT_GT(advisor.configurations_enumerated(), 0);
  EXPECT_LE(r.configuration.SizeBytes(pool_, cat_), cat_.TotalDataBytes());
  EXPECT_GT(Perf(*sim_, w_, r.configuration), 0.1);
}

TEST_F(BaselinesTest, IlpBuildDominatesItsRuntime) {
  Prepare(20);
  IlpAdvisor advisor(sim_.get(), &pool_, w_, IlpOptions{});
  const AdvisorResult r = advisor.Recommend(cs_);
  ASSERT_TRUE(r.status.ok());
  // The formulation's cost: enumeration+costing (build) outweighs the
  // solve — the effect behind the paper's Figures 5/10.
  EXPECT_GT(r.timings.build_seconds, 0.0);
}

TEST_F(BaselinesTest, RelaxationAdvisorRespectsBudget) {
  Prepare(10);
  ConstraintSet tight;
  tight.SetStorageBudget(0.1 * cat_.TotalDataBytes());
  RelaxationAdvisor advisor(sim_.get(), &pool_, w_, RelaxationOptions{});
  const AdvisorResult r = advisor.Recommend(tight);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(advisor.name(), "tool-a");
  EXPECT_LE(r.configuration.SizeBytes(pool_, cat_),
            0.1 * cat_.TotalDataBytes() * 1.001);
  EXPECT_GT(r.whatif_calls, 0);  // works through direct what-if calls
}

TEST_F(BaselinesTest, RelaxationAdvisorImprovesWorkload) {
  Prepare(10);
  RelaxationAdvisor advisor(sim_.get(), &pool_, w_, RelaxationOptions{});
  const AdvisorResult r = advisor.Recommend(cs_);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(Perf(*sim_, w_, r.configuration), 0.05);
}

TEST_F(BaselinesTest, GreedyAdvisorRespectsBudgetAndImproves) {
  Prepare(15);
  GreedyAdvisor advisor(sim_.get(), &pool_, w_, GreedyOptions{});
  const AdvisorResult r = advisor.Recommend(cs_);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(advisor.name(), "tool-b");
  EXPECT_LE(r.configuration.SizeBytes(pool_, cat_),
            cat_.TotalDataBytes() * 1.001);
  EXPECT_GT(Perf(*sim_, w_, r.configuration), 0.05);
  EXPECT_LE(r.candidates_considered, 45);  // the paper's traced cap
}

TEST_F(BaselinesTest, CandidateCountsMatchThePapersOrdering) {
  // §5.2: Tool-A ~170, Tool-B ~45 candidates; CoPhy an order of
  // magnitude more.
  Prepare(60);
  CoPhyOptions copts;
  copts.node_limit = 1000;
  CoPhyAdvisor cophy(sim_.get(), &pool_, w_, copts);
  RelaxationAdvisor tool_a(sim_.get(), &pool_, w_, RelaxationOptions{});
  GreedyAdvisor tool_b(sim_.get(), &pool_, w_, GreedyOptions{});
  const AdvisorResult rc = cophy.Recommend(cs_);
  const AdvisorResult ra = tool_a.Recommend(cs_);
  const AdvisorResult rb = tool_b.Recommend(cs_);
  ASSERT_TRUE(rc.status.ok());
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_GT(rc.candidates_considered, ra.candidates_considered);
  EXPECT_GT(rc.candidates_considered, rb.candidates_considered);
  EXPECT_LE(ra.candidates_considered, 170);
  EXPECT_LE(rb.candidates_considered, 45);
}

TEST_F(BaselinesTest, CoPhyAtLeastMatchesGreedyOnHomogeneous) {
  Prepare(25);
  ConstraintSet budget;
  budget.SetStorageBudget(0.5 * cat_.TotalDataBytes());
  CoPhyOptions copts;
  copts.node_limit = 3000;
  CoPhyAdvisor cophy(sim_.get(), &pool_, w_, copts);
  GreedyAdvisor tool_b(sim_.get(), &pool_, w_, GreedyOptions{});
  const AdvisorResult rc = cophy.Recommend(budget);
  const AdvisorResult rb = tool_b.Recommend(budget);
  ASSERT_TRUE(rc.status.ok());
  ASSERT_TRUE(rb.status.ok());
  const double perf_c = Perf(*sim_, w_, rc.configuration);
  const double perf_b = Perf(*sim_, w_, rb.configuration);
  EXPECT_GE(perf_c, perf_b - 0.05);  // CoPhy at least competitive
}

TEST_F(BaselinesTest, GreedySamplingHurtsOnHeterogeneous) {
  // The mechanism behind Fig. 9: with a heterogeneous workload, the
  // sampled compression misses most query shapes, so Tool-B leaves
  // clearly more on the table than CoPhy.
  Prepare(60, 11, /*het=*/true);
  ConstraintSet budget;
  budget.SetStorageBudget(cat_.TotalDataBytes());
  CoPhyOptions copts;
  copts.node_limit = 3000;
  CoPhyAdvisor cophy(sim_.get(), &pool_, w_, copts);
  GreedyOptions gopts;
  gopts.sample_size = 15;  // aggressive compression
  GreedyAdvisor tool_b(sim_.get(), &pool_, w_, gopts);
  const AdvisorResult rc = cophy.Recommend(budget);
  const AdvisorResult rb = tool_b.Recommend(budget);
  ASSERT_TRUE(rc.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_GT(Perf(*sim_, w_, rc.configuration),
            Perf(*sim_, w_, rb.configuration));
}

TEST_F(BaselinesTest, AllAdvisorsRunOnSystemB) {
  cat_ = MakeTpchCatalog(0.1, 0.0);
  pool_ = IndexPool();
  sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                           CostModel::SystemB());
  WorkloadOptions o;
  o.num_statements = 10;
  o.seed = 3;
  w_ = MakeHomogeneousWorkload(cat_, o);
  ConstraintSet cs;
  cs.SetStorageBudget(cat_.TotalDataBytes());

  CoPhyOptions copts;
  copts.node_limit = 1500;
  CoPhyAdvisor cophy(sim_.get(), &pool_, w_, copts);
  GreedyAdvisor tool_b(sim_.get(), &pool_, w_, GreedyOptions{});
  IlpAdvisor ilp(sim_.get(), &pool_, w_, IlpOptions{});
  for (Advisor* a : std::vector<Advisor*>{&cophy, &tool_b, &ilp}) {
    const AdvisorResult r = a->Recommend(cs);
    ASSERT_TRUE(r.status.ok()) << a->name();
    EXPECT_GT(Perf(*sim_, w_, r.configuration), 0.0) << a->name();
  }
}

}  // namespace
}  // namespace cophy
