// Unit + property tests for inum/: template caching, the fast-cost
// lookup, and — most importantly — the INUM ≡ what-if equivalence that
// Lemma 1 (linear composability) rests on.
#include <gtest/gtest.h>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "index/candidates.h"
#include "inum/inum.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class InumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cat_ = MakeTpchCatalog(0.1, 0.0);
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
  }

  void PrepareWorkload(int n, uint64_t seed, bool het = false,
                       double update_fraction = 0.0) {
    WorkloadOptions o;
    o.num_statements = n;
    o.seed = seed;
    o.update_fraction = update_fraction;
    w_ = het ? MakeHeterogeneousWorkload(cat_, o)
             : MakeHomogeneousWorkload(cat_, o);
    candidates_ = GenerateCandidates(w_, cat_, CandidateOptions{}, pool_);
    inum_ = std::make_unique<Inum>(sim_.get());
    inum_->Prepare(w_, candidates_);
  }

  /// A random subset of the candidate set.
  Configuration RandomConfig(Rng& rng, double p) {
    std::vector<IndexId> ids;
    for (IndexId id : candidates_) {
      if (rng.Bernoulli(p)) ids.push_back(id);
    }
    return Configuration(std::move(ids));
  }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  std::unique_ptr<Inum> inum_;
  Workload w_;
  std::vector<IndexId> candidates_;
};

TEST_F(InumTest, MatchesWhatIfOnEmptyConfiguration) {
  PrepareWorkload(10, 3);
  for (const Query& q : w_.statements()) {
    EXPECT_NEAR(inum_->Cost(q.id, Configuration::Empty()),
                sim_->Cost(q, Configuration::Empty()).value(),
                1e-6 * sim_->Cost(q, Configuration::Empty()).value())
        << q.ToString(cat_);
  }
}

TEST_F(InumTest, MatchesWhatIfOnFullCandidateSet) {
  PrepareWorkload(10, 4);
  const Configuration all(candidates_);
  for (const Query& q : w_.statements()) {
    const double whatif = sim_->Cost(q, all).value();
    EXPECT_NEAR(inum_->Cost(q.id, all), whatif, 1e-6 * whatif)
        << q.ToString(cat_);
  }
}

TEST_F(InumTest, TemplateCountsAreBounded) {
  PrepareWorkload(20, 5);
  EXPECT_GT(inum_->TotalTemplates(), 0);
  for (const Query& q : w_.statements()) {
    const QueryCache& qc = inum_->cache(q.id);
    EXPECT_GE(qc.templates.size(), 1u);
    EXPECT_LE(qc.templates.size(), 96u);
    EXPECT_EQ(qc.slot_orders.size(), q.tables.size());
  }
}

TEST_F(InumTest, GammaListsSortedAndPruned) {
  PrepareWorkload(10, 6);
  for (const Query& q : w_.statements()) {
    const QueryCache& qc = inum_->cache(q.id);
    for (const auto& per_slot : qc.access) {
      for (const auto& list : per_slot) {
        for (size_t i = 1; i < list.size(); ++i) {
          EXPECT_LE(list[i - 1].gamma, list[i].gamma);
        }
        // Domination pruning: nothing in the list is worse than base.
        double base = kInfiniteCost;
        for (const SlotAccess& sa : list) {
          if (sa.index == kInvalidIndex) base = sa.gamma;
        }
        if (base < kInfiniteCost) {
          for (const SlotAccess& sa : list) {
            if (sa.index != kInvalidIndex) {
              EXPECT_LT(sa.gamma, base);
            }
          }
        }
      }
    }
  }
  EXPECT_GE(inum_->TotalRawGammaEntries(), inum_->TotalGammaEntries());
}

TEST_F(InumTest, IncrementalAddMatchesFullPrepare) {
  PrepareWorkload(8, 7);
  // Split candidates: prepare with the first half, add the second half.
  const size_t half = candidates_.size() / 2;
  std::vector<IndexId> first(candidates_.begin(), candidates_.begin() + half);
  std::vector<IndexId> second(candidates_.begin() + half, candidates_.end());

  Inum incremental(sim_.get());
  incremental.Prepare(w_, first);
  incremental.AddCandidates(second);

  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const Configuration x = RandomConfig(rng, 0.3);
    for (const Query& q : w_.statements()) {
      EXPECT_NEAR(incremental.Cost(q.id, x), inum_->Cost(q.id, x),
                  1e-9 + 1e-9 * inum_->Cost(q.id, x));
    }
  }
}

TEST_F(InumTest, UpdateStatementsCostedExactly) {
  PrepareWorkload(20, 8, /*het=*/false, /*update_fraction=*/0.4);
  ASSERT_FALSE(w_.UpdateIds().empty());
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Configuration x = RandomConfig(rng, 0.25);
    for (QueryId uid : w_.UpdateIds()) {
      const double whatif = sim_->Cost(w_[uid], x).value();
      EXPECT_NEAR(inum_->Cost(uid, x), whatif, 1e-6 * whatif);
    }
  }
}

TEST_F(InumTest, ShellCostExcludesMaintenance) {
  PrepareWorkload(20, 9, false, 0.4);
  ASSERT_FALSE(w_.UpdateIds().empty());
  const Configuration all(candidates_);
  for (QueryId uid : w_.UpdateIds()) {
    EXPECT_LE(inum_->ShellCost(uid, all), inum_->Cost(uid, all));
  }
}

TEST_F(InumTest, CostLookupIsCheaperThanWhatIf) {
  PrepareWorkload(5, 10);
  const Configuration all(candidates_);
  const int64_t calls_before = sim_->num_whatif_calls();
  for (int i = 0; i < 100; ++i) {
    for (const Query& q : w_.statements()) inum_->ShellCost(q.id, all);
  }
  // The fast path must not touch the what-if optimizer at all.
  EXPECT_EQ(sim_->num_whatif_calls(), calls_before);
}

// --- The central property: INUM cost == what-if cost -------------------
// (In our simulator the INUM approximation is exact by construction —
// Lemma 1's linear composability — so equality must hold for every
// configuration, not just approximately.)

struct EquivalenceCase {
  double zipf = 0.0;
  bool het = false;
  bool system_b = false;
  double density = 0.3;
};

class InumEquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(InumEquivalenceTest, CostEqualsWhatIfOnRandomConfigurations) {
  const EquivalenceCase& c = GetParam();
  Catalog cat = MakeTpchCatalog(0.1, c.zipf);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool,
                      c.system_b ? CostModel::SystemB() : CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 10;
  o.seed = 123;
  o.update_fraction = 0.15;
  Workload w = c.het ? MakeHeterogeneousWorkload(cat, o)
                     : MakeHomogeneousWorkload(cat, o);
  const auto candidates = GenerateCandidates(w, cat, CandidateOptions{}, pool);
  Inum inum(&sim);
  inum.Prepare(w, candidates);

  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<IndexId> ids;
    for (IndexId id : candidates) {
      if (rng.Bernoulli(c.density)) ids.push_back(id);
    }
    const Configuration x(std::move(ids));
    for (const Query& q : w.statements()) {
      const double whatif = sim.Cost(q, x).value();
      const double fast = inum.Cost(q.id, x);
      EXPECT_NEAR(fast, whatif, 1e-6 * whatif)
          << "z=" << c.zipf << " het=" << c.het << " q=" << q.ToString(cat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InumEquivalenceTest,
    ::testing::Values(EquivalenceCase{0.0, false, false, 0.3},
                      EquivalenceCase{0.0, true, false, 0.3},
                      EquivalenceCase{2.0, false, false, 0.3},
                      EquivalenceCase{2.0, true, false, 0.5},
                      EquivalenceCase{1.0, false, true, 0.3},
                      EquivalenceCase{0.0, true, true, 0.7}));

}  // namespace
}  // namespace cophy
