// Differential fuzz harness for the sparse-LU revised simplex
// (lp::SolveLp) against the retained dense tableau oracle
// (lp::SolveLpDense), run over the full pricing x entry matrix
// ({Dantzig, devex} x {primal phases, dual simplex}) on the same seed
// set. Each seed generates a random bounded LP — mixed <=/>=/= rows,
// fixed / boxed / upper-unbounded / truly-free variables, plus injected
// degenerate and rank-deficient structure (duplicated, scaled, and
// summed rows) — and asserts, per combination:
//
//   1. status agreement (Ok / Infeasible / Unbounded);
//   2. objectives within 1e-6 (relative) when both solve;
//   3. primal feasibility of both solutions against the original model;
//   4. the dual identity d = c - y'A between the revised solver's
//      exported row duals and reduced costs, on every solved instance;
//   5. re-importing the revised solver's own basis warm-starts to the
//      same optimum with zero pivots — through the dual simplex on the
//      dual-entry combinations, which must also report zero *dual*
//      pivots on an already-optimal basis.
//
// Dual-entry combinations exercise every dual-simplex exit: cold starts
// are usually not dual feasible (primal fallback), re-imports are
// (pure dual solve), and infeasible instances must surface as dual
// rays. The seed count is env-overridable via COPHY_LP_FUZZ_SEEDS
// (mirroring COPHY_FAULT_SWEEP_SEEDS; default 64 per combination).
//
// The oracle cannot shift truly-free variables (it rewrites x = lo + x'
// with finite lo), so the harness hands it the classic x = x+ - x-
// split — an equivalent LP with the same optimal value and the same
// feasibility/boundedness verdicts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/random.h"
#include "lp/dense_simplex.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace cophy::lp {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Feasibility of a point w.r.t. the model's rows and bounds (LP
/// relaxation: integrality ignored).
bool LpFeasible(const Model& m, const std::vector<double>& x,
                double eps = 1e-6) {
  if (static_cast<int>(x.size()) != m.num_variables()) return false;
  for (int i = 0; i < m.num_variables(); ++i) {
    if (x[i] < m.variable(i).lower - eps || x[i] > m.variable(i).upper + eps) {
      return false;
    }
  }
  for (int r = 0; r < m.num_rows(); ++r) {
    const RowView rv = m.row(r);
    double lhs = 0;
    for (int k = 0; k < rv.nnz; ++k) lhs += rv.vals[k] * x[rv.cols[k]];
    switch (rv.sense) {
      case Sense::kLe:
        if (lhs > rv.rhs + eps) return false;
        break;
      case Sense::kGe:
        if (lhs < rv.rhs - eps) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - rv.rhs) > eps) return false;
        break;
    }
  }
  return true;
}

/// One random bounded LP. Integer-valued data keeps infeasibility /
/// optimality margins away from the solvers' tolerances, so the status
/// verdicts are well defined.
Model RandomLp(Rng& rng) {
  Model m;
  const int n = 2 + static_cast<int>(rng.Uniform(11));
  for (int i = 0; i < n; ++i) {
    const double c = static_cast<double>(rng.UniformInRange(-6, 6));
    const double roll = rng.NextDouble();
    if (roll < 0.15) {
      // Fixed variable (lo == hi), degenerate by construction.
      const double v = static_cast<double>(rng.UniformInRange(-3, 3));
      m.AddVariable(v, v, c, false);
    } else if (roll < 0.28) {
      // Truly free: no finite bound on either side.
      m.AddVariable(-kInfinity, kInfinity, c, false);
    } else if (roll < 0.45) {
      // Lower-bounded only (possibly negative lower bound).
      m.AddVariable(static_cast<double>(rng.UniformInRange(-4, 2)), kInfinity,
                    c, false);
    } else {
      const double lo = static_cast<double>(rng.UniformInRange(-4, 0));
      m.AddVariable(lo, lo + 1.0 + static_cast<double>(rng.Uniform(6)), c,
                    false);
    }
  }
  const int rows = 1 + static_cast<int>(rng.Uniform(7));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int i = 0; i < n; ++i) {
      if (!rng.Bernoulli(0.5)) continue;
      double coef = static_cast<double>(rng.UniformInRange(-3, 3));
      if (coef == 0) coef = 1;
      row.terms.push_back({i, coef});
    }
    if (row.terms.empty()) continue;
    const uint64_t pick = rng.Uniform(10);
    row.sense = pick < 6 ? Sense::kLe : (pick < 9 ? Sense::kGe : Sense::kEq);
    row.rhs = static_cast<double>(rng.UniformInRange(-4, 11));
    m.AddRow(std::move(row));
  }
  // Degenerate / rank-deficient injections: the basis matrix sees
  // exactly dependent rows, tied ratio tests, and redundant planes.
  const int base_rows = m.num_rows();
  if (base_rows > 0 && rng.Bernoulli(0.5)) {
    // Exact duplicate (dependent rows; consistent by construction).
    const RowView rv = m.row(static_cast<int>(rng.Uniform(base_rows)));
    Row dup;
    for (int k = 0; k < rv.nnz; ++k) dup.terms.push_back({rv.cols[k], rv.vals[k]});
    dup.sense = rv.sense;
    dup.rhs = rv.rhs;
    m.AddRow(std::move(dup));
  }
  if (base_rows > 0 && rng.Bernoulli(0.4)) {
    // Scaled copy: same hyperplane, different row scaling.
    const RowView rv = m.row(static_cast<int>(rng.Uniform(base_rows)));
    const double s = 2.0 + static_cast<double>(rng.Uniform(3));
    Row scaled;
    for (int k = 0; k < rv.nnz; ++k) {
      scaled.terms.push_back({rv.cols[k], s * rv.vals[k]});
    }
    scaled.sense = rv.sense;
    scaled.rhs = s * rv.rhs;
    m.AddRow(std::move(scaled));
  }
  if (base_rows > 1 && rng.Bernoulli(0.4)) {
    // Sum of two rows under the first row's sense: a linearly dependent
    // (and, when the senses agree, implied) constraint.
    const int a = static_cast<int>(rng.Uniform(base_rows));
    const int b = static_cast<int>(rng.Uniform(base_rows));
    const RowView ra = m.row(a);
    const RowView rb = m.row(b);
    std::vector<double> dense(n, 0.0);
    for (int k = 0; k < ra.nnz; ++k) dense[ra.cols[k]] += ra.vals[k];
    for (int k = 0; k < rb.nnz; ++k) dense[rb.cols[k]] += rb.vals[k];
    Row sum;
    for (int i = 0; i < n; ++i) {
      if (dense[i] != 0.0) sum.terms.push_back({i, dense[i]});
    }
    if (!sum.terms.empty()) {
      sum.sense = ra.sense;
      sum.rhs = ra.rhs + rb.rhs;
      m.AddRow(std::move(sum));
    }
  }
  return m;
}

/// The oracle-safe twin: every truly-free variable x is replaced by
/// x+ - x- with x+, x- in [0, inf). Same optimal value, same status.
/// `split_of[j]` receives the x- column for free j (-1 otherwise).
Model SplitFreeVariables(const Model& m, std::vector<int>* split_of) {
  Model t;
  const int n = m.num_variables();
  split_of->assign(n, -1);
  for (int j = 0; j < n; ++j) {
    const Variable& v = m.variable(j);
    t.AddVariable(v.lower, v.upper, v.objective, false);
  }
  for (int j = 0; j < n; ++j) {
    const Variable& v = m.variable(j);
    if (std::isinf(v.lower) && std::isinf(v.upper)) {
      t.variable(j).lower = 0.0;  // j becomes x+
      (*split_of)[j] = t.AddVariable(0.0, kInfinity, -v.objective, false);
    }
  }
  for (int r = 0; r < m.num_rows(); ++r) {
    const RowView rv = m.row(r);
    Row row;
    row.sense = rv.sense;
    row.rhs = rv.rhs;
    for (int k = 0; k < rv.nnz; ++k) {
      row.terms.push_back({rv.cols[k], rv.vals[k]});
      const int neg = (*split_of)[rv.cols[k]];
      if (neg >= 0) row.terms.push_back({neg, -rv.vals[k]});
    }
    t.AddRow(std::move(row));
  }
  return t;
}

/// CI scaling knob, mirroring COPHY_FAULT_SWEEP_SEEDS.
int FuzzSeedCount() {
  if (const char* env = std::getenv("COPHY_LP_FUZZ_SEEDS")) {
    return std::max(1, std::atoi(env));
  }
  return 64;
}

/// Parameter: (seed, combination) with combination bit 0 = pricing
/// (0 Dantzig, 1 devex) and bit 1 = entry (0 primal, 1 dual).
class LpFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LpFuzzTest, RevisedMatchesDenseOracle) {
  const int seed = std::get<0>(GetParam());
  const int combo = std::get<1>(GetParam());
  LpOptions options;
  options.pricing = (combo & 1) != 0 ? Pricing::kDevex : Pricing::kDantzig;
  options.entry =
      (combo & 2) != 0 ? SimplexEntry::kDual : SimplexEntry::kPrimal;

  Rng rng(90000 + seed);
  const Model m = RandomLp(rng);
  std::vector<int> split_of;
  const Model oracle_model = SplitFreeVariables(m, &split_of);

  const LpSolution revised = SolveLp(m, options);
  const LpSolution dense = SolveLpDense(oracle_model);

  // 1. Status agreement. Neither solver may hit its iteration limit on
  // instances this small, so the verdict set is {Ok, Infeasible,
  // Unbounded} and must match exactly.
  ASSERT_NE(revised.status.code(), StatusCode::kInternal)
      << revised.status.ToString();
  ASSERT_NE(dense.status.code(), StatusCode::kInternal)
      << dense.status.ToString();
  EXPECT_EQ(revised.status.code(), dense.status.code())
      << "revised=" << revised.status.ToString()
      << " dense=" << dense.status.ToString();

  if (revised.status.ok()) {
    // 3. Primal feasibility of the revised solution.
    EXPECT_TRUE(LpFeasible(m, revised.x)) << "revised solution infeasible";

    // 4. Dual identity d = c - y'A against the model's own rows, on
    // every solved instance (catches any row-scaling or permutation
    // leak through the LU factors).
    ASSERT_EQ(revised.duals.size(), static_cast<size_t>(m.num_rows()));
    ASSERT_EQ(revised.reduced_costs.size(),
              static_cast<size_t>(m.num_variables()));
    std::vector<double> d(m.num_variables());
    for (int j = 0; j < m.num_variables(); ++j) {
      d[j] = m.variable(j).objective;
    }
    for (int r = 0; r < m.num_rows(); ++r) {
      const RowView rv = m.row(r);
      for (int k = 0; k < rv.nnz; ++k) {
        d[rv.cols[k]] -= revised.duals[r] * rv.vals[k];
      }
    }
    for (int j = 0; j < m.num_variables(); ++j) {
      EXPECT_NEAR(d[j], revised.reduced_costs[j], 1e-6 + 1e-7 * std::abs(d[j]))
          << "var " << j;
    }

    // 5. The exported basis warm-starts a re-solve to the same optimum
    // with zero pivots (the LU import path). Under dual entry the
    // re-import is already dual feasible *and* primal feasible, so the
    // dual simplex must also pivot zero times.
    const LpSolution again = SolveLp(m, options, nullptr, nullptr,
                                     &revised.basis);
    ASSERT_TRUE(again.status.ok());
    EXPECT_TRUE(again.stats.warm_started);
    EXPECT_EQ(again.stats.phase1_pivots, 0);
    EXPECT_EQ(again.stats.phase2_pivots, 0);
    EXPECT_EQ(again.stats.dual_pivots, 0);
    EXPECT_NEAR(again.objective, revised.objective,
                1e-9 + 1e-9 * std::abs(revised.objective));
  }

  if (dense.status.ok()) {
    // 3'. The oracle's solution, mapped back through the free-variable
    // split, must be feasible for the original model.
    std::vector<double> x(m.num_variables());
    for (int j = 0; j < m.num_variables(); ++j) {
      x[j] = dense.x[j];
      if (split_of[j] >= 0) x[j] -= dense.x[split_of[j]];
    }
    EXPECT_TRUE(LpFeasible(m, x)) << "dense oracle solution infeasible";

    if (revised.status.ok()) {
      // 2. Objective agreement within 1e-6.
      EXPECT_NEAR(revised.objective, dense.objective,
                  1e-6 + 1e-6 * std::abs(dense.objective));
    }
  }
}

std::string ComboName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kCombo[] = {"DantzigPrimal", "DevexPrimal",
                                 "DantzigDual", "DevexDual"};
  return std::string(kCombo[std::get<1>(info.param)]) + "_seed" +
         std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PricingEntryMatrix, LpFuzzTest,
    ::testing::Combine(::testing::Range(0, FuzzSeedCount()),
                       ::testing::Range(0, 4)),
    ComboName);

// --- Pathological corpus -------------------------------------------------
//
// Hand-built adversarial instances crossed over the same pricing x
// entry matrix: the classic cycling examples (Beale; Kuhn's degenerate
// origin), a 1e-8..1e8 dynamic-range instance, near-parallel duplicated
// rows, and a singular warm-basis import. Every combination must come
// back Ok, *certified* (the safeguards' independent unscaled
// verification pass), primal feasible, and at the known optimum (or the
// dense oracle's, where the optimum is checked differentially).

LpOptions ComboOptions(int combo) {
  LpOptions options;
  options.pricing = (combo & 1) != 0 ? Pricing::kDevex : Pricing::kDantzig;
  options.entry =
      (combo & 2) != 0 ? SimplexEntry::kDual : SimplexEntry::kPrimal;
  return options;
}

class PathologicalLpTest : public ::testing::TestWithParam<int> {};

TEST_P(PathologicalLpTest, BealeCyclingExampleCertifiesAtKnownOptimum) {
  // Beale (1955): the textbook simplex with Dantzig pricing and a
  // naive ratio test cycles forever at the degenerate origin. Optimum
  // -1/20 at x = (1/25, 0, 1, 0).
  Model m;
  const VarId x1 = m.AddVariable(0, kInfinity, -0.75, false);
  const VarId x2 = m.AddVariable(0, kInfinity, 150.0, false);
  const VarId x3 = m.AddVariable(0, kInfinity, -0.02, false);
  const VarId x4 = m.AddVariable(0, kInfinity, 6.0, false);
  m.AddRow({{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
            Sense::kLe, 0.0, ""});
  m.AddRow({{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
            Sense::kLe, 0.0, ""});
  m.AddRow({{{x3, 1.0}}, Sense::kLe, 1.0, ""});
  const LpSolution s = SolveLp(m, ComboOptions(GetParam()));
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_TRUE(s.stats.certified);
  EXPECT_TRUE(LpFeasible(m, s.x));
  EXPECT_NEAR(s.objective, -0.05, 1e-7);
}

TEST_P(PathologicalLpTest, KuhnDegenerateOriginMatchesOracle) {
  // Kuhn's cycling example, boxed to keep it bounded: both rows pass
  // through the origin, so the starting vertex is maximally degenerate
  // and every early ratio test ties at zero.
  Model m;
  const VarId x1 = m.AddVariable(0, 1, -2.0, false);
  const VarId x2 = m.AddVariable(0, 1, -3.0, false);
  const VarId x3 = m.AddVariable(0, 1, 1.0, false);
  const VarId x4 = m.AddVariable(0, 1, 12.0, false);
  m.AddRow({{{x1, -2.0}, {x2, -9.0}, {x3, 1.0}, {x4, 9.0}},
            Sense::kLe, 0.0, ""});
  m.AddRow({{{x1, 1.0 / 3.0}, {x2, 1.0}, {x3, -1.0 / 3.0}, {x4, -2.0}},
            Sense::kLe, 0.0, ""});
  const LpSolution s = SolveLp(m, ComboOptions(GetParam()));
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_TRUE(s.stats.certified);
  EXPECT_TRUE(LpFeasible(m, s.x));
  const LpSolution dense = SolveLpDense(m);
  ASSERT_TRUE(dense.status.ok()) << dense.status.ToString();
  EXPECT_NEAR(s.objective, dense.objective,
              1e-6 + 1e-6 * std::abs(dense.objective));
}

TEST_P(PathologicalLpTest, WideDynamicRangeCertifies) {
  // Coefficients spanning 1e-8..1e8 in one instance — the scaling
  // stack's acceptance case. Optimum by construction: a = 1 (the 1e8
  // row binds, forcing c = 0), b = 0.5 (the 1e-8 row binds), so the
  // objective is -(1e8 + 0.5) exactly.
  Model m;
  const VarId a = m.AddVariable(0, 1, -1e8, false);
  const VarId b = m.AddVariable(0, 1, -1.0, false);
  const VarId c = m.AddVariable(0, 1, -1e-8, false);
  m.AddRow({{{a, 1e8}, {c, 1e-8}}, Sense::kLe, 1e8, ""});
  m.AddRow({{{b, 1e-8}}, Sense::kLe, 0.5e-8, ""});
  const LpSolution s = SolveLp(m, ComboOptions(GetParam()));
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_TRUE(s.stats.certified);
  EXPECT_TRUE(LpFeasible(m, s.x));
  EXPECT_NEAR(s.objective, -(1e8 + 0.5), 1e-6 * 1e8);
  EXPECT_NEAR(s.x[b], 0.5, 1e-6);
}

TEST_P(PathologicalLpTest, NearParallelDuplicatedRowsCertify) {
  // Three almost-identical planes (1e-9 apart) through the optimal
  // face: the basis matrix is nearly singular whenever two of them are
  // basic together. The exact optimum is still -1, at (1, 0).
  Model m;
  const VarId x = m.AddVariable(0, 1, -1.0, false);
  const VarId y = m.AddVariable(0, 1, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0, ""});
  m.AddRow({{{x, 1.0}, {y, 1.0 + 1e-9}}, Sense::kLe, 1.0, ""});
  m.AddRow({{{x, 1.0 - 1e-9}, {y, 1.0}}, Sense::kLe, 1.0, ""});
  const LpSolution s = SolveLp(m, ComboOptions(GetParam()));
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_TRUE(s.stats.certified);
  EXPECT_TRUE(LpFeasible(m, s.x));
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
}

TEST_P(PathologicalLpTest, SingularWarmImportRecoversOnEveryCombination) {
  // A hand-forged import whose basic columns are exact duplicates: the
  // recovery ladder (Markowitz escalation, then slack substitution)
  // must absorb it on every pricing x entry combination and still land
  // certified on the true optimum.
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  const VarId y = m.AddVariable(0, 3, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  LpBasis sick;
  sick.variables = {VarStatus::kBasic, VarStatus::kBasic};
  sick.slacks = {VarStatus::kAtLower, VarStatus::kAtLower};
  const LpSolution s =
      SolveLp(m, ComboOptions(GetParam()), nullptr, nullptr, &sick);
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_GE(s.stats.singular_repairs, 1);
  EXPECT_TRUE(s.stats.certified);
  EXPECT_TRUE(LpFeasible(m, s.x));
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

std::string PathologyComboName(const ::testing::TestParamInfo<int>& info) {
  static const char* kCombo[] = {"DantzigPrimal", "DevexPrimal",
                                 "DantzigDual", "DevexDual"};
  return kCombo[info.param];
}

INSTANTIATE_TEST_SUITE_P(PricingEntryMatrix, PathologicalLpTest,
                         ::testing::Range(0, 4), PathologyComboName);

}  // namespace
}  // namespace cophy::lp
