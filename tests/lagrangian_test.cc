// Bound-validity property tests on *real* CoPhy problems (not random
// structures): the solver's node bounds — optimistic + knapsack and the
// Lagrangian at optimized multipliers — must never exceed the optimum
// of any subtree containing the true optimal selection. This is the
// invariant that guarantees branch-and-bound never prunes the optimum
// away (it failed once during development; see choice_problem.cc's
// slot-disjointness precondition).
#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/simulator.h"
#include "catalog/catalog.h"
#include "core/bipgen.h"
#include "index/candidates.h"
#include "lp/choice_problem.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct RealProblemCase {
  int num_queries;
  uint64_t seed;
  double budget_fraction;
  bool het;
  double zipf;
};

class RealProblemBoundTest : public ::testing::TestWithParam<RealProblemCase> {
 protected:
  /// Builds a CoPhy ChoiceProblem over a *small candidate subset* so
  /// brute force stays tractable (≤ 14 indexes → ≤ 16K selections).
  lp::ChoiceProblem Build(const RealProblemCase& c) {
    cat_ = MakeTpchCatalog(0.1, c.zipf);
    sim_ = std::make_unique<SystemSimulator>(&cat_, &pool_,
                                             CostModel::SystemA());
    WorkloadOptions o;
    o.num_statements = c.num_queries;
    o.seed = c.seed;
    Workload w = c.het ? MakeHeterogeneousWorkload(cat_, o)
                       : MakeHomogeneousWorkload(cat_, o);
    CandidateOptions copts;
    copts.extra_variants = false;
    std::vector<IndexId> all = GenerateCandidates(w, cat_, copts, pool_);
    if (all.size() > 14) all.resize(14);
    inum_ = std::make_unique<Inum>(sim_.get());
    inum_->Prepare(w, all);
    ConstraintSet cs;
    double total = 0;
    for (IndexId id : all) total += IndexSizeBytes(pool_[id], cat_);
    cs.SetStorageBudget(c.budget_fraction * total);
    candidates_ = all;
    return BuildChoiceProblem(*inum_, all, cs);
  }

  Catalog cat_;
  IndexPool pool_;
  std::unique_ptr<SystemSimulator> sim_;
  std::unique_ptr<Inum> inum_;
  std::vector<IndexId> candidates_;
};

TEST_P(RealProblemBoundTest, BoundsValidAlongOptimalPath) {
  const lp::ChoiceProblem p = Build(GetParam());
  const int n = p.num_indexes;
  ASSERT_LE(n, 14);

  // Brute-force optimum.
  double best = lp::kInf;
  std::vector<uint8_t> best_sel;
  std::vector<uint8_t> sel(n);
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    for (int i = 0; i < n; ++i) sel[i] = (mask >> i) & 1;
    if (!p.Feasible(sel)) continue;
    const double obj = p.Objective(sel);
    if (obj < best) {
      best = obj;
      best_sel = sel;
    }
  }
  ASSERT_TRUE(std::isfinite(best));

  lp::ChoiceSolver solver(&p);
  const double dual = solver.DebugOptimizeLagrangian(best * 1.1, 200);
  EXPECT_LE(dual, best + 1e-6 + 1e-9 * std::abs(best));

  // Walk fixings consistent with the optimum: every bound must stay a
  // lower bound of `best` (the optimum lives in each such subtree).
  std::vector<int8_t> fixed(n, -1);
  for (int step = 0; step <= n; ++step) {
    const double nb = solver.DebugNodeBound(fixed);
    const double lb = solver.DebugLagrangianBound(fixed);
    EXPECT_LE(nb, best + 1e-6 + 1e-9 * std::abs(best)) << "step " << step;
    EXPECT_LE(lb, best + 1e-6 + 1e-9 * std::abs(best)) << "step " << step;
    if (step < n) fixed[step] = best_sel[step] ? 1 : -1;
    if (step < n && !best_sel[step]) fixed[step] = 0;
  }

  // At the fully-fixed leaf the plain bound is exact.
  for (int i = 0; i < n; ++i) fixed[i] = best_sel[i] ? 1 : 0;
  EXPECT_NEAR(solver.DebugNodeBound(fixed), best,
              1e-6 + 1e-9 * std::abs(best));

  // And the full solve reproduces the brute-force optimum.
  lp::ChoiceSolveOptions so;
  so.gap_target = 0.0;
  so.node_limit = 1000000;
  const lp::ChoiceSolution s = solver.Solve(so);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, best, 1e-6 + 1e-6 * std::abs(best));
}

INSTANTIATE_TEST_SUITE_P(
    RealProblems, RealProblemBoundTest,
    ::testing::Values(RealProblemCase{8, 1, 0.3, false, 0.0},
                      RealProblemCase{8, 2, 0.5, false, 0.0},
                      RealProblemCase{8, 3, 1.0, false, 0.0},
                      RealProblemCase{12, 4, 0.4, true, 0.0},
                      RealProblemCase{12, 5, 0.4, false, 2.0},
                      RealProblemCase{10, 6, 0.25, true, 1.0},
                      RealProblemCase{6, 7, 0.6, false, 1.0},
                      RealProblemCase{14, 8, 0.35, true, 2.0}));

TEST(LagrangianDualTest, ImprovesWithIterations) {
  // More subgradient iterations never worsen the (best-kept) dual.
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool, CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 15;
  o.seed = 3;
  Workload w = MakeHomogeneousWorkload(cat, o);
  std::vector<IndexId> cands = GenerateCandidates(w, cat, CandidateOptions{}, pool);
  Inum inum(&sim);
  inum.Prepare(w, cands);
  ConstraintSet cs;
  cs.SetStorageBudget(0.4 * cat.TotalDataBytes());
  lp::ChoiceProblem p = BuildChoiceProblem(inum, cands, cs);

  std::vector<uint8_t> none(p.num_indexes, 0);
  const double ub = p.Objective(none);
  lp::ChoiceSolver s1(&p), s2(&p);
  const double d10 = s1.DebugOptimizeLagrangian(ub, 10);
  const double d200 = s2.DebugOptimizeLagrangian(ub, 200);
  EXPECT_GE(d200, d10 - 1e-6 * std::abs(d10));
}

TEST(LagrangianDualTest, TightensOnLooseBudget) {
  // With no binding storage constraint the dual should essentially
  // close the gap to the optimum (the inner problem separates).
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  IndexPool pool;
  SystemSimulator sim(&cat, &pool, CostModel::SystemA());
  WorkloadOptions o;
  o.num_statements = 10;
  o.seed = 4;
  Workload w = MakeHomogeneousWorkload(cat, o);
  CandidateOptions copts;
  copts.extra_variants = false;
  std::vector<IndexId> cands = GenerateCandidates(w, cat, copts, pool);
  Inum inum(&sim);
  inum.Prepare(w, cands);
  ConstraintSet cs;  // no budget at all
  lp::ChoiceProblem p = BuildChoiceProblem(inum, cands, cs);

  lp::ChoiceSolver solver(&p);
  lp::ChoiceSolveOptions so;
  so.gap_target = 0.0;
  const lp::ChoiceSolution s = solver.Solve(so);
  ASSERT_TRUE(s.status.ok());
  EXPECT_LE(s.gap, 0.01);  // unconstrained: provably near-exact
}

}  // namespace
}  // namespace cophy
