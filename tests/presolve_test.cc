// Unit + property tests for lp/presolve: each reduction rule in
// isolation, the exact-equivalence guarantee (presolve-on and
// presolve-off solves return identical objectives and re-inflated
// recommendations), objective preservation under arbitrary selections,
// and bit-identical output across thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/thread_pool.h"
#include "lp/choice_problem.h"
#include "lp/presolve.h"

namespace cophy::lp {
namespace {

/// Brute-force optimum over all index selections.
double BruteForce(const ChoiceProblem& p, std::vector<uint8_t>* arg = nullptr) {
  const int n = p.num_indexes;
  double best = kInf;
  std::vector<uint8_t> sel(n);
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    for (int i = 0; i < n; ++i) sel[i] = (mask >> i) & 1;
    if (!p.Feasible(sel)) continue;
    const double obj = p.Objective(sel);
    if (obj < best) {
      best = obj;
      if (arg != nullptr) *arg = sel;
    }
  }
  return best;
}

/// Random CoPhy-shaped problem (same invariants as choice_solver_test:
/// slots draw from disjoint per-table index sets). Adds deliberate
/// redundancy — duplicate plans, duplicate in-slot options, options
/// sorted after base — so every reduction rule gets exercised.
ChoiceProblem RandomProblem(uint64_t seed, int num_indexes, int num_queries,
                            bool tight_budget, bool with_fixed_costs) {
  Rng rng(seed);
  constexpr int kTables = 3;
  ChoiceProblem p;
  p.num_indexes = num_indexes;
  p.fixed_cost.assign(num_indexes, 0.0);
  p.size.resize(num_indexes);
  double total_size = 0;
  for (int a = 0; a < num_indexes; ++a) {
    p.size[a] = 1.0 + static_cast<double>(rng.Uniform(20));
    total_size += p.size[a];
    if (with_fixed_costs && rng.Bernoulli(0.3)) {
      p.fixed_cost[a] = static_cast<double>(rng.Uniform(30));
    }
  }
  for (int q = 0; q < num_queries; ++q) {
    ChoiceQuery cq;
    cq.weight = 1.0 + static_cast<double>(rng.Uniform(3));
    const int plans = 1 + static_cast<int>(rng.Uniform(3));
    const int slots = 1 + static_cast<int>(rng.Uniform(kTables));
    std::vector<int> tables(kTables);
    for (int t = 0; t < kTables; ++t) tables[t] = t;
    for (int t = 0; t < kTables; ++t) {
      std::swap(tables[t], tables[t + rng.Uniform(kTables - t)]);
    }
    for (int k = 0; k < plans; ++k) {
      ChoicePlan plan;
      plan.beta = 10.0 + static_cast<double>(rng.Uniform(100));
      for (int s = 0; s < slots; ++s) {
        const int table = tables[s];
        ChoiceSlot slot;
        const double base_gamma = 50.0 + static_cast<double>(rng.Uniform(200));
        const int opts = static_cast<int>(rng.Uniform(4));
        for (int o = 0; o < opts; ++o) {
          ChoiceOption opt;
          const int pick = static_cast<int>(rng.Uniform(num_indexes));
          opt.index = pick - (pick % kTables) + table;
          if (opt.index >= num_indexes) opt.index -= kTables;
          if (opt.index < 0) continue;
          // ~25% of options land above the base gamma (prunable).
          opt.gamma = base_gamma * rng.NextDouble() * 1.34;
          slot.options.push_back(opt);
        }
        slot.options.push_back({kBaseOption, base_gamma});
        std::sort(slot.options.begin(), slot.options.end(),
                  [](const ChoiceOption& a, const ChoiceOption& b) {
                    return a.gamma < b.gamma;
                  });
        plan.slots.push_back(std::move(slot));
      }
      cq.plans.push_back(std::move(plan));
      // Occasionally duplicate the plan verbatim (rule-2 food).
      if (rng.Bernoulli(0.3)) cq.plans.push_back(cq.plans.back());
    }
    p.queries.push_back(std::move(cq));
  }
  if (tight_budget) p.storage_budget = total_size * 0.3;
  return p;
}

// --- Reduction rules in isolation ---------------------------------------

TEST(PresolveRuleTest, OptionsAfterBaseArePruned) {
  ChoiceProblem p;
  p.num_indexes = 2;
  p.fixed_cost = {0, 0};
  p.size = {1, 1};
  ChoiceQuery q;
  ChoicePlan plan;
  plan.beta = 1;
  ChoiceSlot slot;
  // Sorted by gamma: index 0 improves, base, index 1 is unreachable.
  slot.options = {{0, 2.0}, {kBaseOption, 5.0}, {1, 7.0}};
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  p.queries.push_back(q);

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  ASSERT_EQ(pre.problem.queries[0].plans[0].slots[0].options.size(), 2u);
  EXPECT_EQ(pre.problem.queries[0].plans[0].slots[0].options[1].index,
            kBaseOption);
  // Index 1 lost its only option and is not constrained: dropped.
  EXPECT_EQ(pre.problem.num_indexes, 1);
  ASSERT_EQ(pre.kept_indexes.size(), 1u);
  EXPECT_EQ(pre.kept_indexes[0], 0);
  EXPECT_GT(pre.stats.OptionsRemoved(), 0);
}

TEST(PresolveRuleTest, ShadowedDuplicateIndexPruned) {
  ChoiceProblem p;
  p.num_indexes = 1;
  p.fixed_cost = {0};
  p.size = {1};
  ChoiceQuery q;
  ChoicePlan plan;
  ChoiceSlot slot;
  slot.options = {{0, 1.0}, {0, 2.0}, {kBaseOption, 5.0}};
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  p.queries.push_back(q);

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  const ChoiceSlot& s = pre.problem.queries[0].plans[0].slots[0];
  ASSERT_EQ(s.options.size(), 2u);
  EXPECT_EQ(s.options[0].index, 0);
  EXPECT_DOUBLE_EQ(s.options[0].gamma, 1.0);
}

TEST(PresolveRuleTest, DuplicatePlansMerge) {
  ChoiceProblem p;
  p.num_indexes = 1;
  p.fixed_cost = {0};
  p.size = {1};
  ChoiceQuery q;
  ChoicePlan plan;
  plan.beta = 10;
  ChoiceSlot slot;
  slot.options = {{0, 1.0}, {kBaseOption, 5.0}};
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  q.plans.push_back(plan);  // exact duplicate
  ChoicePlan pricier = plan;
  pricier.beta = 12;  // identical slots, higher beta: dominated
  q.plans.push_back(pricier);
  p.queries.push_back(q);

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  ASSERT_EQ(pre.problem.queries[0].plans.size(), 1u);
  EXPECT_DOUBLE_EQ(pre.problem.queries[0].plans[0].beta, 10.0);
  EXPECT_EQ(pre.stats.duplicate_plans, 1);
  EXPECT_GE(pre.stats.dominated_plans, 1);
}

TEST(PresolveRuleTest, IntervalDominanceRemovesPlan) {
  // Plan B costs 50 with nothing selected; plan A costs >= 100 even
  // with everything selected. A can never win the per-query min.
  ChoiceProblem p;
  p.num_indexes = 1;
  p.fixed_cost = {0};
  p.size = {1};
  ChoiceQuery q;
  ChoicePlan a;
  a.beta = 100;
  ChoiceSlot sa;
  sa.options = {{0, 3.0}, {kBaseOption, 8.0}};
  a.slots.push_back(sa);
  ChoicePlan b;
  b.beta = 50;  // no slots: worst == best == 50
  q.plans.push_back(a);
  q.plans.push_back(b);
  p.queries.push_back(q);

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  ASSERT_EQ(pre.problem.queries[0].plans.size(), 1u);
  EXPECT_DOUBLE_EQ(pre.problem.queries[0].plans[0].beta, 50.0);
  EXPECT_EQ(pre.stats.dominated_plans, 1);
}

TEST(PresolveRuleTest, RequirementSubsetDominance) {
  // ILP-form configurations: {0,1} at total 50 is dominated by {0} at
  // total 45 (subset, no dearer); {0} at 45 vs {1} at 40 is kept (no
  // inclusion either way).
  ChoiceProblem p;
  p.num_indexes = 2;
  p.fixed_cost = {0, 0};
  p.size = {1, 1};
  ChoiceQuery q;
  auto config = [](std::vector<int> idxs, double beta) {
    ChoicePlan plan;
    plan.beta = beta;
    for (int i : idxs) {
      ChoiceSlot s;
      s.options = {{i, 0.0}};
      plan.slots.push_back(std::move(s));
    }
    return plan;
  };
  q.plans.push_back(config({0, 1}, 50));
  q.plans.push_back(config({0}, 45));
  q.plans.push_back(config({1}, 40));
  q.plans.push_back(config({}, 90));  // base configuration
  p.queries.push_back(q);

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  ASSERT_EQ(pre.problem.queries[0].plans.size(), 3u);
  for (const ChoicePlan& plan : pre.problem.queries[0].plans) {
    EXPECT_NE(plan.slots.size(), 2u) << "dominated config survived";
  }
  EXPECT_EQ(pre.stats.dominated_plans, 1);
}

TEST(PresolveRuleTest, TieOnlyIndexDroppedUnlessConstrained) {
  // Index 1's only option exactly ties the base fallback: selecting it
  // can never strictly improve any query, so it is dropped — unless a
  // >= z-row needs it.
  ChoiceProblem p;
  p.num_indexes = 2;
  p.fixed_cost = {0, 0};
  p.size = {1, 1};
  ChoiceQuery q;
  ChoicePlan plan;
  ChoiceSlot slot;
  slot.options = {{0, 2.0}, {1, 5.0}, {kBaseOption, 5.0}};
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  p.queries.push_back(q);

  const PresolvedChoiceProblem dropped = PresolveChoiceProblem(p);
  EXPECT_EQ(dropped.problem.num_indexes, 1);
  EXPECT_EQ(dropped.stats.IndexesRemoved(), 1);

  ChoiceProblem constrained = p;
  constrained.z_rows.push_back({{{1, 1.0}}, Sense::kGe, 1.0, "need 1"});
  const PresolvedChoiceProblem kept = PresolveChoiceProblem(constrained);
  EXPECT_EQ(kept.problem.num_indexes, 2);
}

TEST(PresolveRuleTest, NegativeLeCoefficientKeepsIndex) {
  // z_rows with negative coefficients in <= rows: selecting the index
  // *relaxes* the row, so it must survive even without improving plans.
  ChoiceProblem p;
  p.num_indexes = 2;
  p.fixed_cost = {0, 0};
  p.size = {1, 1};
  ChoiceQuery q;
  ChoicePlan plan;
  ChoiceSlot slot;
  slot.options = {{0, 2.0}, {kBaseOption, 5.0}};
  plan.slots.push_back(slot);
  q.plans.push_back(plan);
  p.queries.push_back(q);
  p.z_rows.push_back({{{0, 1.0}, {1, -1.0}}, Sense::kLe, 0.0, "0 implies 1"});

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  EXPECT_EQ(pre.problem.num_indexes, 2);
}

TEST(PresolveRuleTest, DegenerateInputsStayInfeasibleNotFatal) {
  // An empty slot makes a plan unsatisfiable under every selection and
  // a query may end up with no satisfiable plan at all; presolve must
  // hand that through as an unsatisfiable problem (Status::Infeasible
  // from the solver), never abort.
  ChoiceProblem p;
  p.num_indexes = 1;
  p.fixed_cost = {0};
  p.size = {1};
  ChoiceQuery q;
  ChoicePlan plan;
  plan.slots.emplace_back();  // empty slot: never satisfiable
  q.plans.push_back(plan);
  p.queries.push_back(q);

  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  std::vector<uint8_t> none(pre.problem.num_indexes, 0);
  EXPECT_EQ(pre.problem.Objective(none), kInf);
  const ChoiceSolution sol = SolveChoiceProblem(p);
  EXPECT_FALSE(sol.status.ok());

  ChoiceProblem planless;
  planless.num_indexes = 1;
  planless.fixed_cost = {0};
  planless.size = {1};
  planless.queries.emplace_back();  // no plans at all
  const ChoiceSolution sol2 = SolveChoiceProblem(planless);
  EXPECT_FALSE(sol2.status.ok());
}

TEST(PresolveRuleTest, InflateRestrictRoundTrip) {
  ChoiceProblem p = RandomProblem(17, 9, 5, true, true);
  const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
  std::vector<uint8_t> reduced(pre.problem.num_indexes, 0);
  for (size_t i = 0; i < reduced.size(); i += 2) reduced[i] = 1;
  const std::vector<uint8_t> full = pre.Inflate(reduced);
  ASSERT_EQ(static_cast<int>(full.size()), p.num_indexes);
  EXPECT_EQ(pre.Restrict(full), reduced);
}

// --- Exactness: every selection keeps its objective ----------------------

TEST(PresolveTest, ObjectiveAndFeasibilityPreservedForEverySelection) {
  for (uint64_t seed : {31u, 32u, 33u, 34u, 35u, 36u}) {
    const ChoiceProblem p = RandomProblem(seed, 10, 6, seed % 2 == 0, true);
    const PresolvedChoiceProblem pre = PresolveChoiceProblem(p);
    ASSERT_LE(pre.problem.num_indexes, p.num_indexes);
    // Enumerate selections over the *kept* indexes (dropped ones stay
    // 0, which rule 4 guarantees loses nothing).
    const int k = pre.problem.num_indexes;
    ASSERT_LE(k, 12);
    std::vector<uint8_t> reduced(k);
    for (uint64_t mask = 0; mask < (1ull << k); ++mask) {
      for (int i = 0; i < k; ++i) reduced[i] = (mask >> i) & 1;
      const std::vector<uint8_t> full = pre.Inflate(reduced);
      const double obj_red = pre.problem.Objective(reduced);
      const double obj_full = p.Objective(full);
      if (obj_full == kInf) {
        EXPECT_EQ(obj_red, kInf) << "seed " << seed << " mask " << mask;
      } else {
        EXPECT_NEAR(obj_red, obj_full, 1e-9 + 1e-12 * std::abs(obj_full))
            << "seed " << seed << " mask " << mask;
      }
      EXPECT_EQ(pre.problem.Feasible(reduced), p.Feasible(full))
          << "seed " << seed << " mask " << mask;
    }
  }
}

// --- Equivalence suite: presolve on/off solves agree ---------------------

class PresolveEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalenceTest, OnOffIdenticalObjectiveAndRecommendation) {
  const int seed = GetParam();
  const ChoiceProblem p =
      RandomProblem(200 + seed, 9, 7, seed % 2 == 0, seed % 3 == 0);
  const double brute = BruteForce(p);

  ChoiceSolveOptions opts;
  opts.gap_target = 0.0;
  opts.node_limit = 500000;

  ChoiceSolveOptions off = opts;
  off.presolve = false;
  PresolveStats stats_on, stats_off;
  const ChoiceSolution on = SolveChoiceProblem(p, opts, &stats_on);
  const ChoiceSolution without = SolveChoiceProblem(p, off, &stats_off);

  if (!std::isfinite(brute)) {
    EXPECT_FALSE(on.status.ok());
    EXPECT_FALSE(without.status.ok());
    return;
  }
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  ASSERT_TRUE(without.status.ok()) << without.status.ToString();
  EXPECT_NEAR(on.objective, brute, 1e-6 + 1e-6 * std::abs(brute));
  EXPECT_NEAR(without.objective, brute, 1e-6 + 1e-6 * std::abs(brute));
  // Both answers are selections over the original index space and are
  // feasible and optimal there.
  ASSERT_EQ(on.selected.size(), without.selected.size());
  EXPECT_TRUE(p.Feasible(on.selected));
  EXPECT_TRUE(p.Feasible(without.selected));
  EXPECT_NEAR(p.Objective(on.selected), p.Objective(without.selected),
              1e-6 + 1e-6 * std::abs(brute));
  EXPECT_EQ(stats_off.PlansRemoved(), 0);
  EXPECT_EQ(stats_on.plans_in,
            static_cast<int64_t>([&] {
              int64_t c = 0;
              for (const auto& q : p.queries) c += q.plans.size();
              return c;
            }()));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PresolveEquivalenceTest,
                         ::testing::Range(0, 16));

// --- Parallel determinism ------------------------------------------------

bool ProblemsBitIdentical(const ChoiceProblem& a, const ChoiceProblem& b) {
  if (a.num_indexes != b.num_indexes || a.fixed_cost != b.fixed_cost ||
      a.size != b.size || a.storage_budget != b.storage_budget ||
      a.constant_cost != b.constant_cost ||
      a.queries.size() != b.queries.size() ||
      a.z_rows.size() != b.z_rows.size()) {
    return false;
  }
  for (size_t q = 0; q < a.queries.size(); ++q) {
    const ChoiceQuery& qa = a.queries[q];
    const ChoiceQuery& qb = b.queries[q];
    if (qa.weight != qb.weight || qa.cost_cap != qb.cost_cap ||
        qa.plans.size() != qb.plans.size()) {
      return false;
    }
    for (size_t k = 0; k < qa.plans.size(); ++k) {
      if (qa.plans[k].beta != qb.plans[k].beta ||
          qa.plans[k].slots.size() != qb.plans[k].slots.size()) {
        return false;
      }
      for (size_t s = 0; s < qa.plans[k].slots.size(); ++s) {
        const auto& oa = qa.plans[k].slots[s].options;
        const auto& ob = qb.plans[k].slots[s].options;
        if (oa.size() != ob.size()) return false;
        for (size_t o = 0; o < oa.size(); ++o) {
          if (oa[o].index != ob[o].index || oa[o].gamma != ob[o].gamma) {
            return false;
          }
        }
      }
    }
  }
  for (size_t r = 0; r < a.z_rows.size(); ++r) {
    if (a.z_rows[r].terms != b.z_rows[r].terms ||
        a.z_rows[r].sense != b.z_rows[r].sense ||
        a.z_rows[r].rhs != b.z_rows[r].rhs) {
      return false;
    }
  }
  return true;
}

TEST(PresolveTest, BitIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {71u, 72u, 73u}) {
    const ChoiceProblem p = RandomProblem(seed, 12, 24, true, true);
    const PresolvedChoiceProblem serial = PresolveChoiceProblem(p, nullptr);
    for (int threads : {1, 2, 8}) {
      cophy::ThreadPool pool(threads);
      const PresolvedChoiceProblem parallel = PresolveChoiceProblem(p, &pool);
      EXPECT_TRUE(ProblemsBitIdentical(serial.problem, parallel.problem))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.kept_indexes, parallel.kept_indexes);
      EXPECT_EQ(serial.stats.plans_out, parallel.stats.plans_out);
      EXPECT_EQ(serial.stats.options_out, parallel.stats.options_out);
      EXPECT_EQ(serial.stats.duplicate_plans, parallel.stats.duplicate_plans);
      EXPECT_EQ(serial.stats.dominated_plans, parallel.stats.dominated_plans);
    }
  }
}

}  // namespace
}  // namespace cophy::lp
