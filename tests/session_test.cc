// Sharded advisor sessions: shard invariance (Tune is bit-identical for
// any shard count and to the unsharded CoPhy path), constraint
// translation across shards, incremental add/remove deltas, verbatim
// reuse of prepared state on constraint-only retunes, and the
// cross-solve resolve-state machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <map>

#include "optimizer/simulator.h"
#include "baselines/cophy_advisor.h"
#include "baselines/ilp_advisor.h"
#include "catalog/catalog.h"
#include "core/cophy.h"
#include "core/report.h"
#include "core/session.h"
#include "lp/presolve.h"
#include "optimizer/fault_injection.h"
#include "workload/generator.h"

namespace cophy {
namespace {

struct Env {
  Catalog cat;
  IndexPool pool;
  std::unique_ptr<SystemSimulator> sim;

  explicit Env(double z = 0.0) {
    cat = MakeTpchCatalog(0.1, z);
    sim = std::make_unique<SystemSimulator>(&cat, &pool, CostModel::SystemA());
  }
};

Workload MakeWorkload(int n, uint64_t seed = 42, double update_fraction = 0.0,
                      bool randomize_weights = false) {
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  WorkloadOptions o;
  o.num_statements = n;
  o.seed = seed;
  o.update_fraction = update_fraction;
  o.randomize_weights = randomize_weights;
  return MakeHomogeneousWorkload(cat, o);
}

CoPhyOptions TestOptions() {
  CoPhyOptions opts;
  opts.gap_target = 0.05;
  opts.node_limit = 3000;
  // Exercise the shared worker pool (outer shard fan-out + nested
  // per-statement loops); outputs are thread-count independent.
  opts.prepare.num_threads = 4;
  return opts;
}

struct TuneResult {
  std::vector<IndexId> config;  // sorted
  double objective = 0;
  int num_candidates = 0;
  BipStats bip;
};

TuneResult RunCoPhy(const Workload& w, double budget_m,
                    const ConstraintSet* extra = nullptr) {
  Env e;
  CoPhy advisor(e.sim.get(), &e.pool, w, TestOptions());
  EXPECT_TRUE(advisor.Prepare().ok());
  ConstraintSet cs = extra != nullptr ? *extra : ConstraintSet();
  cs.SetStorageBudget(budget_m * e.cat.TotalDataBytes());
  const Recommendation rec = advisor.Tune(cs);
  EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  TuneResult r;
  r.config = rec.configuration.ids();
  std::sort(r.config.begin(), r.config.end());
  r.objective = rec.objective;
  r.num_candidates = rec.num_candidates;
  r.bip = rec.bip;
  return r;
}

TuneResult RunSession(const Workload& w, double budget_m, int shards,
                      const ConstraintSet* extra = nullptr) {
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = shards;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(w);
  ConstraintSet cs = extra != nullptr ? *extra : ConstraintSet();
  cs.SetStorageBudget(budget_m * e.cat.TotalDataBytes());
  const Recommendation rec = session.Tune(cs);
  EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  TuneResult r;
  r.config = rec.configuration.ids();
  std::sort(r.config.begin(), r.config.end());
  r.objective = rec.objective;
  r.num_candidates = rec.num_candidates;
  r.bip = rec.bip;
  return r;
}

// --- Shard invariance ----------------------------------------------------

TEST(SessionTest, ShardInvariance30Statements) {
  const Workload w = MakeWorkload(30, 42, /*update_fraction=*/0.2);
  const TuneResult unsharded = RunCoPhy(w, 0.5);
  for (int shards : {1, 2, 8}) {
    const TuneResult got = RunSession(w, 0.5, shards);
    EXPECT_EQ(got.config, unsharded.config) << "shards=" << shards;
    EXPECT_EQ(got.objective, unsharded.objective)  // exact bits
        << "shards=" << shards;
    EXPECT_EQ(got.num_candidates, unsharded.num_candidates);
    EXPECT_EQ(got.bip.y_variables, unsharded.bip.y_variables);
    EXPECT_EQ(got.bip.x_variables, unsharded.bip.x_variables);
    EXPECT_EQ(got.bip.z_variables, unsharded.bip.z_variables);
    EXPECT_EQ(got.bip.linking_rows, unsharded.bip.linking_rows);
    EXPECT_EQ(got.bip.assignment_rows, unsharded.bip.assignment_rows);
  }
}

TEST(SessionTest, ShardInvariance300Statements) {
  const Workload w =
      MakeWorkload(300, 7, /*update_fraction=*/0.25, /*randomize_weights=*/true);
  const TuneResult unsharded = RunCoPhy(w, 0.5);
  for (int shards : {1, 2, 8}) {
    const TuneResult got = RunSession(w, 0.5, shards);
    EXPECT_EQ(got.config, unsharded.config) << "shards=" << shards;
    EXPECT_EQ(got.objective, unsharded.objective) << "shards=" << shards;
  }
}

TEST(SessionTest, MergedStatsReportShardsAndSkew) {
  const Workload w = MakeWorkload(40);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation rec = session.Tune(cs);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_EQ(rec.prepare.shards, 4);
  EXPECT_EQ(rec.prepare.compression.input_statements, 40);
  EXPECT_GT(rec.prepare.max_shard_statements, 0);
  EXPECT_GE(rec.prepare.ShardSkew(), 1.0);
  const std::string rendered = RenderPrepareStats(rec.prepare);
  EXPECT_NE(rendered.find("Shards: 4"), std::string::npos);
}

// --- Constraint translation across shards --------------------------------

TEST(SessionTest, QueryConstraintsTranslateAcrossShards) {
  // Session ids equal workload positions (statements added in order),
  // so the same constraint set drives both pipelines; with 8 shards the
  // constrained statements' classes land on different shards.
  const Workload w = MakeWorkload(30);
  ConstraintSet extra;
  extra.AddQueryCostConstraint({0, 0.9, 0.0});
  extra.AddQueryCostConstraint({7, 0.9, 0.0});
  extra.AddQueryCostConstraint({13, 0.95, 0.0});
  const TuneResult unsharded = RunCoPhy(w, 1.0, &extra);
  for (int shards : {2, 8}) {
    const TuneResult got = RunSession(w, 1.0, shards, &extra);
    EXPECT_EQ(got.config, unsharded.config) << "shards=" << shards;
    EXPECT_EQ(got.objective, unsharded.objective) << "shards=" << shards;
  }
}

TEST(SessionTest, ConstraintOnRemovedStatementIsDropped) {
  const Workload w = MakeWorkload(20);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  const std::vector<QueryId> ids = session.AddWorkload(w);
  ASSERT_TRUE(session.RemoveStatements({ids[3]}).ok());

  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  // An impossible constraint on the *removed* statement must not make
  // the problem infeasible — it is dropped with the statement.
  cs.AddQueryCostConstraint({ids[3], 0.0001, 0.0});
  const Recommendation rec = session.Tune(cs);
  EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
}

TEST(SessionTest, RemovalThatEmptiesShardStillTunes) {
  // A workload small enough that one shard owns exactly one class;
  // removing that class's statements empties the shard.
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  std::vector<Query> stmts;
  for (int t = 0; t < 3; ++t) {
    stmts.push_back(MakeHomogeneousStatement(cat, t, /*seed=*/5));
  }
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 3;  // one class per shard (round-robin)
  AdvisorSession session(e.sim.get(), &e.pool, so);
  const std::vector<QueryId> ids = session.AddStatements(stmts);
  ASSERT_EQ(session.num_classes(), 3);

  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  ASSERT_TRUE(session.Tune(cs).status.ok());

  // Constraint on a statement whose class (and shard) is being emptied.
  ASSERT_TRUE(session.RemoveStatements({ids[1]}).ok());
  EXPECT_EQ(session.num_classes(), 2);
  ConstraintSet cs2 = cs;
  cs2.AddQueryCostConstraint({ids[1], 0.0001, 0.0});  // dropped, not applied
  const Recommendation rec = session.Retune(cs2);
  EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_EQ(session.num_statements(), 2);

  // The emptied shard's class set can grow again.
  session.AddStatements({MakeHomogeneousStatement(cat, 1, /*seed=*/5)});
  EXPECT_EQ(session.num_classes(), 3);
  EXPECT_TRUE(session.Retune(cs).status.ok());
}

// --- Verbatim reuse of prepared state ------------------------------------

TEST(SessionTest, ConstraintOnlyRetuneDoesNoPrepareWork) {
  const Workload w = MakeWorkload(40);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  ASSERT_TRUE(session.Tune(cs).status.ok());

  // Constraint-only change: the PreparedWorkloads are reused verbatim —
  // zero what-if optimizer calls, zero preparation wall time.
  const int64_t calls_before = e.sim->num_whatif_calls();
  ConstraintSet cs2;
  cs2.SetStorageBudget(0.25 * e.cat.TotalDataBytes());
  const Recommendation rec = session.Retune(cs2);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_EQ(e.sim->num_whatif_calls(), calls_before);
  EXPECT_EQ(rec.timings.inum_seconds, 0.0);
}

TEST(SessionTest, CoPhyAdvisorReRecommendReusesPreparedState) {
  const Workload w = MakeWorkload(30);
  Env e;
  CoPhyAdvisor advisor(e.sim.get(), &e.pool, w, TestOptions());
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const AdvisorResult first = advisor.Recommend(cs);
  ASSERT_TRUE(first.status.ok());
  EXPECT_GT(first.whatif_calls, 0);

  ConstraintSet cs2;
  cs2.SetStorageBudget(0.25 * e.cat.TotalDataBytes());
  const AdvisorResult second = advisor.Recommend(cs2);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.whatif_calls, 0);  // prepared state reused verbatim
}

TEST(SessionTest, CoPhyRetuneAfterConstraintChangeDoesNoWhatIfCalls) {
  // Same guarantee on the one-shot CoPhy front end: Retune with an
  // unchanged workload never re-enters the preparation stage.
  const Workload w = MakeWorkload(20);
  Env e;
  CoPhy advisor(e.sim.get(), &e.pool, w, TestOptions());
  ASSERT_TRUE(advisor.Prepare().ok());
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  ASSERT_TRUE(advisor.Tune(cs).status.ok());
  const int64_t calls_before = e.sim->num_whatif_calls();
  ConstraintSet cs2;
  cs2.SetStorageBudget(0.25 * e.cat.TotalDataBytes());
  ASSERT_TRUE(advisor.Retune(cs2).status.ok());
  EXPECT_EQ(e.sim->num_whatif_calls(), calls_before);
}

// --- Incremental deltas ---------------------------------------------------

TEST(SessionTest, WeightOnlyDeltaRetunesWarm) {
  const Workload w = MakeWorkload(60, 42);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  ASSERT_TRUE(session.Tune(cs).status.ok());

  // Duplicates of existing statements: every class already exists, so
  // the delta is pure re-weighting — no shard re-prepares, and the
  // solve goes through the warm resolve path (same structure digest).
  std::vector<Query> dup(w.statements().begin(), w.statements().begin() + 6);
  const int64_t calls_before = e.sim->num_whatif_calls();
  session.AddStatements(dup);
  const Recommendation rec = session.Retune(cs);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_EQ(e.sim->num_whatif_calls(), calls_before);  // no INUM work
  EXPECT_GE(session.resolve_state().warm_reuses, 1);
  EXPECT_EQ(session.num_statements(), 66);
}

TEST(SessionTest, ConstraintChangeRetuneKeepsRootLpBound) {
  // The root-LP skip is reserved for pure re-weighting: a budget change
  // (structure digest unchanged, constraint digest changed) must keep
  // the full root machinery so the new bound is computed fresh.
  const Workload w = MakeWorkload(40);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  ASSERT_TRUE(session.Tune(cs).status.ok());

  // Weight-only delta, same constraints: root LP skipped, seeded duals
  // carry the bound.
  session.AddStatements({w.statements()[0]});
  const Recommendation warm = session.Retune(cs);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(std::isinf(warm.root_lp_bound));

  // Budget change: the root LP runs again.
  ConstraintSet cs2;
  cs2.SetStorageBudget(0.25 * e.cat.TotalDataBytes());
  const Recommendation rebudget = session.Retune(cs2);
  ASSERT_TRUE(rebudget.status.ok());
  EXPECT_TRUE(std::isfinite(rebudget.root_lp_bound));
}

TEST(SessionTest, CoPhyAdvisorLossyCompressionFallsBack) {
  // Lossy compression is a batch-mode feature sessions reject; the
  // advisor adapter must still serve it (classic one-shot path), not
  // abort.
  const Workload w = MakeWorkload(40);
  Env e;
  CoPhyOptions opts = TestOptions();
  opts.prepare.compression.mode = CompressionMode::kLossy;
  opts.prepare.compression.max_statements = 10;
  CoPhyAdvisor advisor(e.sim.get(), &e.pool, w, opts);
  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  const AdvisorResult result = advisor.Recommend(cs);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.configuration.empty());
  EXPECT_FALSE(result.prepare.compression.lossless);
}

TEST(SessionTest, AddRemoveDeltaStaysConsistent) {
  const Workload w = MakeWorkload(200, 42);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(e.sim.get(), &e.pool, so);
  const std::vector<QueryId> ids = session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation first = session.Tune(cs);
  ASSERT_TRUE(first.status.ok());

  // Delta: drop 2 statements, add 4 new ones (a fresh seed can open new
  // classes → structural refresh of the affected shards only).
  ASSERT_TRUE(session.RemoveStatements({ids[0], ids[10]}).ok());
  const Workload extra = MakeWorkload(4, 777);
  session.AddWorkload(extra);
  const Recommendation rec = session.Retune(cs);
  ASSERT_TRUE(rec.status.ok());
  EXPECT_EQ(session.num_statements(), 202);
  EXPECT_TRUE(rec.configuration.SizeBytes(e.pool, e.cat) <=
              0.5 * e.cat.TotalDataBytes());

  // The warm result matches a cold session built over the equivalent
  // modified workload (same budget, full cold budget) within the
  // combined optimality gaps.
  Workload modified;
  for (const Query& q : w.statements()) {
    if (q.id == ids[0] || q.id == ids[10]) continue;
    modified.Add(q);
  }
  for (const Query& q : extra.statements()) modified.Add(q);
  const TuneResult cold = RunSession(modified, 0.5, 4);
  EXPECT_LE(rec.objective, cold.objective * 1.12);
  EXPECT_GE(rec.objective, cold.objective * 0.88);
}

TEST(SessionTest, RemoveEverythingThenTuneFails) {
  const Workload w = MakeWorkload(5);
  Env e;
  SessionOptions so;
  so.tuning = TestOptions();
  AdvisorSession session(e.sim.get(), &e.pool, so);
  const std::vector<QueryId> ids = session.AddWorkload(w);
  ASSERT_TRUE(session.RemoveStatements(ids).ok());
  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  EXPECT_FALSE(session.Tune(cs).status.ok());
  // Removed ids never come back.
  EXPECT_FALSE(session.RemoveStatements({ids[0]}).ok());
}

TEST(SessionTest, IlpAdvisorHandlesEmptyWorkload) {
  // The session-backed preparation must keep the old PreparedWorkload
  // semantics: an empty workload yields an empty (but valid) prepared
  // view, not an abort.
  Env e;
  IlpAdvisor advisor(e.sim.get(), &e.pool, Workload());
  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  const AdvisorResult result = advisor.Recommend(cs);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.configuration.empty());
}

TEST(SessionTest, EmptySessionTuneFails) {
  Env e;
  AdvisorSession session(e.sim.get(), &e.pool, SessionOptions{});
  ConstraintSet cs;
  cs.SetStorageBudget(e.cat.TotalDataBytes());
  EXPECT_FALSE(session.Tune(cs).status.ok());
}

// --- Stats merge helpers --------------------------------------------------

TEST(SessionTest, StatsMergeOperators) {
  TuningTimings a;
  a.inum_seconds = 1;
  a.build_seconds = 2;
  a.solve_seconds = 3;
  TuningTimings b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.Total(), 12.0);

  PrepareStats s1;
  s1.compression.input_statements = 30;
  s1.compression.output_statements = 3;
  s1.max_shard_statements = 30;
  s1.num_threads = 2;
  s1.inum_seconds = 0.5;
  PrepareStats s2;
  s2.compression.input_statements = 10;
  s2.compression.output_statements = 2;
  s2.max_shard_statements = 10;
  s2.num_threads = 4;
  s2.inum_seconds = 0.25;
  s1 += s2;
  EXPECT_EQ(s1.shards, 2);
  EXPECT_EQ(s1.compression.input_statements, 40);
  EXPECT_EQ(s1.compression.output_statements, 5);
  EXPECT_EQ(s1.max_shard_statements, 30);
  EXPECT_EQ(s1.num_threads, 4);
  EXPECT_DOUBLE_EQ(s1.inum_seconds, 0.75);
  EXPECT_DOUBLE_EQ(s1.ShardSkew(), 30.0 / 20.0);
}

// --- lp::ChoiceResolveState ----------------------------------------------

TEST(ResolveStateTest, WeightPerturbedResolveMatchesColdOptimum) {
  // Build a real BIP, solve to proven optimality, perturb the weights
  // (the structure digest is weight-blind), and re-solve through the
  // resolve state: the warm solve must accept the seeds and land on the
  // same optimum a cold solve finds.
  const Workload w = MakeWorkload(15);
  Env e;
  CoPhy advisor(e.sim.get(), &e.pool, w, TestOptions());
  ASSERT_TRUE(advisor.Prepare().ok());
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const ConstraintSet local = advisor.prepared().TranslateConstraints(cs);
  lp::ChoiceProblem p =
      BuildChoiceProblem(advisor.prepared().inum(), advisor.candidates(), local);

  lp::ChoiceSolveOptions so;
  so.gap_target = 0.0;
  so.node_limit = 200000;
  lp::ChoiceResolveState state;
  so.resolve = &state;
  const lp::ChoiceSolution first = lp::SolveChoiceProblem(p, so);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.reused_state);
  EXPECT_TRUE(state.valid);
  EXPECT_EQ(state.solves, 1);

  lp::ChoiceProblem perturbed = p;
  for (auto& q : perturbed.queries) q.weight *= 1.25;
  EXPECT_EQ(lp::ChoiceStructureDigest(p),
            lp::ChoiceStructureDigest(perturbed));

  const lp::ChoiceSolution warm = lp::SolveChoiceProblem(perturbed, so);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.reused_state);
  EXPECT_EQ(state.warm_reuses, 1);

  lp::ChoiceSolveOptions cold_opts;
  cold_opts.gap_target = 0.0;
  cold_opts.node_limit = 200000;
  const lp::ChoiceSolution cold = lp::SolveChoiceProblem(perturbed, cold_opts);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-9 * std::abs(cold.objective));

  // A structural change (an option removed) invalidates the digest and
  // falls back to a cold solve.
  lp::ChoiceProblem changed = perturbed;
  ASSERT_GT(changed.queries.size(), 0u);
  bool dropped = false;
  for (auto& q : changed.queries) {
    for (auto& plan : q.plans) {
      for (auto& slot : plan.slots) {
        if (slot.options.size() > 1) {
          slot.options.pop_back();
          dropped = true;
          break;
        }
      }
      if (dropped) break;
    }
    if (dropped) break;
  }
  ASSERT_TRUE(dropped);
  EXPECT_NE(lp::ChoiceStructureDigest(perturbed),
            lp::ChoiceStructureDigest(changed));
  const lp::ChoiceSolution after = lp::SolveChoiceProblem(changed, so);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.reused_state);
}

TEST(ResolveStateTest, RootLpBasisWarmStartsAcrossBudgetRetune) {
  // Regression pin for the sparse-LU rewrite of the simplex: the
  // LpBasis shape exported by earlier solves (one VarStatus per
  // variable and per row slack) must keep warm-starting the root LP
  // through ChoiceResolveState. A budget-only retune keeps the
  // structure digest (state reused) but re-runs the root LP, so the
  // solver must accept the previous solve's basis — warm_started true
  // — and land on the same optimum a cold solve finds.
  const Workload w = MakeWorkload(15);
  Env e;
  CoPhy advisor(e.sim.get(), &e.pool, w, TestOptions());
  ASSERT_TRUE(advisor.Prepare().ok());
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const ConstraintSet local = advisor.prepared().TranslateConstraints(cs);
  lp::ChoiceProblem p =
      BuildChoiceProblem(advisor.prepared().inum(), advisor.candidates(), local);

  lp::ChoiceSolveOptions so;
  so.gap_target = 0.0;
  so.node_limit = 200000;
  lp::ChoiceResolveState state;
  so.resolve = &state;
  const lp::ChoiceSolution first = lp::SolveChoiceProblem(p, so);
  ASSERT_TRUE(first.status.ok());
  ASSERT_GT(first.root_lp_rows, 0);
  EXPECT_FALSE(first.root_lp_stats.warm_started);  // nothing to import yet
  ASSERT_FALSE(state.root_basis.empty());

  lp::ChoiceProblem tightened = p;
  tightened.storage_budget *= 0.6;
  const lp::ChoiceSolution warm = lp::SolveChoiceProblem(tightened, so);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.reused_state);
  ASSERT_GT(warm.root_lp_rows, 0);  // budget change re-runs the root LP
  EXPECT_TRUE(warm.root_lp_stats.warm_started);

  lp::ChoiceSolveOptions cold_opts;
  cold_opts.gap_target = 0.0;
  cold_opts.node_limit = 200000;
  const lp::ChoiceSolution cold = lp::SolveChoiceProblem(tightened, cold_opts);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.root_lp_stats.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-9 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_EQ(warm.selected, cold.selected);  // identical incumbent
}

// --- Shard quarantine & degraded recommendations -------------------------

/// The table referenced by the fewest statements (ties: lowest id) — a
/// permanent-fault predicate on it quarantines a strict minority of the
/// session's cost-equivalence classes.
TableId LeastReferencedTable(const Workload& w) {
  std::map<TableId, int> counts;
  for (const Query& q : w.statements()) {
    std::map<TableId, int> seen;
    for (TableId t : q.tables) {
      if (seen[t]++ == 0) ++counts[t];
    }
  }
  TableId best = kInvalidTable;
  int fewest = std::numeric_limits<int>::max();
  for (const auto& [t, c] : counts) {
    if (c < fewest) {
      best = t;
      fewest = c;
    }
  }
  return best;
}

std::function<bool(const Query&)> FailsTable(TableId target) {
  return [target](const Query& q) {
    return std::find(q.tables.begin(), q.tables.end(), target) !=
           q.tables.end();
  };
}

Workload MakeMixedWorkload(int n, uint64_t seed = 42) {
  Catalog cat = MakeTpchCatalog(0.1, 0.0);
  WorkloadOptions o;
  o.num_statements = n;
  o.seed = seed;
  o.update_fraction = 0.2;
  return MakeHeterogeneousWorkload(cat, o);
}

TEST(SessionFaultTest, QuarantinedShardDegradesThenHealsBitIdentically) {
  const Workload w = MakeMixedWorkload(24);
  const TableId target = LeastReferencedTable(w);
  ASSERT_NE(target, kInvalidTable);

  // Fault-free baseline: the output the healed session must return to.
  Env base;
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession healthy(base.sim.get(), &base.pool, so);
  healthy.AddWorkload(w);
  ConstraintSet cs;
  const double budget = 0.5 * base.cat.TotalDataBytes();
  cs.SetStorageBudget(budget);
  const Recommendation want = healthy.Tune(cs);
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();
  EXPECT_EQ(want.coverage, 1.0);
  EXPECT_FALSE(want.degraded);

  // Same session against a backend that permanently fails every
  // statement touching `target`.
  Env e;
  FaultInjectionOptions fo;
  fo.permanent_failure_predicate = FailsTable(target);
  FaultInjectingWhatIf faulty(e.sim.get(), fo);
  AdvisorSession session(&faulty, &e.pool, so);
  session.AddWorkload(w);
  const Recommendation degraded = session.Tune(cs);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.degraded);
  EXPECT_LT(degraded.coverage, 1.0);
  EXPECT_GT(degraded.coverage, 0.0);
  // Still a feasible recommendation for the healthy fraction.
  EXPECT_LE(degraded.configuration.SizeBytes(e.pool, e.cat),
            budget * (1 + 1e-9));
  ASSERT_EQ(static_cast<int>(degraded.shard_health.size()), 4);
  int quarantined = 0;
  for (const ShardHealth& sh : degraded.shard_health) {
    if (!sh.healthy) {
      ++quarantined;
      EXPECT_EQ(sh.status.code(), StatusCode::kInternal);
      EXPECT_GE(sh.consecutive_failures, 1);
      EXPECT_GT(sh.classes, 0);
    }
  }
  EXPECT_GE(quarantined, 1);
  EXPECT_LT(quarantined, 4);

  // Backend heals; Retune retries the quarantined shards and the
  // output returns to the fault-free recommendation bit for bit.
  faulty.Heal();
  const Recommendation healed = session.Retune(cs);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();
  EXPECT_EQ(healed.coverage, 1.0);
  EXPECT_FALSE(healed.degraded);
  for (const ShardHealth& sh : healed.shard_health) {
    EXPECT_TRUE(sh.healthy);
    EXPECT_EQ(sh.consecutive_failures, 0);
  }
  std::vector<IndexId> got_ids = healed.configuration.ids();
  std::vector<IndexId> want_ids = want.configuration.ids();
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);
  EXPECT_EQ(healed.objective, want.objective);  // exact bits
}

TEST(SessionFaultTest, TuneBeforeAnySuccessfulPrepareFailsCleanly) {
  const Workload w = MakeMixedWorkload(12);
  Env e;
  FaultInjectionOptions fo;
  fo.permanent_failure_predicate = [](const Query&) { return true; };
  FaultInjectingWhatIf faulty(e.sim.get(), fo);
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 3;
  AdvisorSession session(&faulty, &e.pool, so);
  session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation rec = session.Tune(cs);
  ASSERT_FALSE(rec.status.ok());
  EXPECT_EQ(rec.coverage, 0.0);
  EXPECT_TRUE(rec.configuration.empty());
  EXPECT_EQ(static_cast<int>(rec.shard_health.size()), 3);
  for (const ShardHealth& sh : rec.shard_health) {
    if (sh.classes > 0) {
      EXPECT_FALSE(sh.healthy);
    }
  }
  // The session is not wedged: a healed backend recovers it in place.
  faulty.Heal();
  const Recommendation recovered = session.Tune(cs);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_EQ(recovered.coverage, 1.0);
  EXPECT_FALSE(recovered.degraded);
}

TEST(SessionFaultTest, RemovingQuarantinedStatementsRestoresFullCoverage) {
  const Workload w = MakeMixedWorkload(24);
  const TableId target = LeastReferencedTable(w);
  ASSERT_NE(target, kInvalidTable);
  Env e;
  FaultInjectionOptions fo;
  fo.permanent_failure_predicate = FailsTable(target);
  FaultInjectingWhatIf faulty(e.sim.get(), fo);
  SessionOptions so;
  so.tuning = TestOptions();
  so.num_shards = 4;
  AdvisorSession session(&faulty, &e.pool, so);
  const std::vector<QueryId> ids = session.AddWorkload(w);
  ConstraintSet cs;
  cs.SetStorageBudget(0.5 * e.cat.TotalDataBytes());
  const Recommendation degraded = session.Tune(cs);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_LT(degraded.coverage, 1.0);

  // Removing every statement the backend refuses to cost (including a
  // removal that may empty a quarantined shard entirely) lets the next
  // Refresh rebuild the remaining shards successfully.
  std::vector<QueryId> doomed;
  for (int i = 0; i < w.size(); ++i) {
    if (FailsTable(target)(w[i])) doomed.push_back(ids[i]);
  }
  ASSERT_FALSE(doomed.empty());
  ASSERT_TRUE(session.RemoveStatements(doomed).ok());
  const Recommendation clean = session.Tune(cs);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_EQ(clean.coverage, 1.0);
  EXPECT_FALSE(clean.degraded);
  for (const ShardHealth& sh : clean.shard_health) {
    EXPECT_TRUE(sh.healthy);
  }
  EXPECT_EQ(session.num_statements(), w.size() - static_cast<int>(doomed.size()));
}

}  // namespace
}  // namespace cophy
