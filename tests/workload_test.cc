// Unit tests for workload/: the homogeneous and heterogeneous
// generators and their invariants.
#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "workload/generator.h"

namespace cophy {
namespace {

class WorkloadGenTest : public ::testing::Test {
 protected:
  Catalog cat_ = MakeTpchCatalog(0.1, 0.0);
};

/// Structural invariants every generated statement must satisfy.
void CheckStatement(const Query& q, const Catalog& cat) {
  ASSERT_FALSE(q.tables.empty());
  // Each table referenced at most once (the paper's §2 simplification).
  std::set<TableId> seen(q.tables.begin(), q.tables.end());
  EXPECT_EQ(seen.size(), q.tables.size());
  // Joins and predicates reference only tables in the FROM list.
  for (const JoinPredicate& j : q.joins) {
    EXPECT_TRUE(q.References(cat.column(j.left).table));
    EXPECT_TRUE(q.References(cat.column(j.right).table));
    EXPECT_NE(cat.column(j.left).table, cat.column(j.right).table);
  }
  for (const Predicate& p : q.predicates) {
    EXPECT_TRUE(q.References(cat.column(p.column).table));
    if (p.op == Predicate::Op::kRange) {
      EXPECT_GT(p.width, 0.0);
    }
  }
  if (q.IsUpdate()) {
    EXPECT_NE(q.update_table, kInvalidTable);
    EXPECT_FALSE(q.set_columns.empty());
    for (ColumnId c : q.set_columns) {
      EXPECT_EQ(cat.column(c).table, q.update_table);
    }
  } else {
    EXPECT_FALSE(q.outputs.empty());
  }
  EXPECT_GT(q.weight, 0.0);
}

TEST_F(WorkloadGenTest, HomogeneousDeterministic) {
  WorkloadOptions o;
  o.num_statements = 50;
  o.seed = 99;
  Workload a = MakeHomogeneousWorkload(cat_, o);
  Workload b = MakeHomogeneousWorkload(cat_, o);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(cat_), b[i].ToString(cat_));
  }
}

TEST_F(WorkloadGenTest, HomogeneousInvariants) {
  WorkloadOptions o;
  o.num_statements = 120;
  o.seed = 1;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  ASSERT_EQ(w.size(), 120);
  for (const Query& q : w.statements()) CheckStatement(q, cat_);
}

TEST_F(WorkloadGenTest, AllFifteenTemplatesGenerate) {
  for (int t = 0; t < NumHomogeneousTemplates(); ++t) {
    const Query q = MakeHomogeneousStatement(cat_, t, 5);
    CheckStatement(q, cat_);
  }
  EXPECT_EQ(NumHomogeneousTemplates(), 15);
}

TEST_F(WorkloadGenTest, HomogeneousHasFewDistinctShapes) {
  WorkloadOptions o;
  o.num_statements = 200;
  o.seed = 3;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  std::set<std::string> shapes;
  for (const Query& q : w.statements()) {
    std::string shape;
    for (TableId t : q.tables) shape += cat_.table(t).name + ",";
    shape += "|g";
    for (ColumnId c : q.group_by) shape += cat_.column(c).name;
    shapes.insert(shape);
  }
  EXPECT_LE(shapes.size(), 15u);
  EXPECT_GE(shapes.size(), 10u);  // most templates hit at 200 statements
}

TEST_F(WorkloadGenTest, HeterogeneousHasManyDistinctShapes) {
  WorkloadOptions o;
  o.num_statements = 200;
  o.seed = 3;
  Workload w = MakeHeterogeneousWorkload(cat_, o);
  std::set<std::string> shapes;
  for (const Query& q : w.statements()) {
    std::string shape;
    for (TableId t : q.tables) shape += cat_.table(t).name + ",";
    for (const Predicate& p : q.predicates) shape += cat_.column(p.column).name;
    shapes.insert(shape);
  }
  // The het workload is the compression-hostile one: shape diversity
  // must be far higher than the 15 homogeneous templates.
  EXPECT_GE(shapes.size(), 100u);
}

TEST_F(WorkloadGenTest, HeterogeneousInvariants) {
  WorkloadOptions o;
  o.num_statements = 150;
  o.seed = 21;
  Workload w = MakeHeterogeneousWorkload(cat_, o);
  for (const Query& q : w.statements()) CheckStatement(q, cat_);
}

TEST_F(WorkloadGenTest, HeterogeneousJoinsAreConnected) {
  WorkloadOptions o;
  o.num_statements = 100;
  o.seed = 8;
  Workload w = MakeHeterogeneousWorkload(cat_, o);
  for (const Query& q : w.statements()) {
    if (q.tables.size() < 2) continue;
    // Union-find over tables through join edges: all in one component.
    std::vector<int> parent(q.tables.size());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      return parent[x] == x ? x : parent[x] = find(parent[x]);
    };
    for (const JoinPredicate& j : q.joins) {
      const int a = q.TableSlot(cat_.column(j.left).table);
      const int b = q.TableSlot(cat_.column(j.right).table);
      parent[find(a)] = find(b);
    }
    std::set<int> roots;
    for (size_t i = 0; i < parent.size(); ++i) roots.insert(find(static_cast<int>(i)));
    EXPECT_EQ(roots.size(), 1u) << q.ToString(cat_);
  }
}

TEST_F(WorkloadGenTest, UpdateFractionRespected) {
  WorkloadOptions o;
  o.num_statements = 400;
  o.seed = 5;
  o.update_fraction = 0.25;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  const int updates = static_cast<int>(w.UpdateIds().size());
  EXPECT_NEAR(static_cast<double>(updates) / w.size(), 0.25, 0.07);
  for (QueryId uid : w.UpdateIds()) CheckStatement(w[uid], cat_);
}

TEST_F(WorkloadGenTest, ZeroUpdateFractionMeansReadOnly) {
  WorkloadOptions o;
  o.num_statements = 100;
  o.seed = 5;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  EXPECT_TRUE(w.UpdateIds().empty());
}

TEST_F(WorkloadGenTest, RandomizedWeights) {
  WorkloadOptions o;
  o.num_statements = 100;
  o.seed = 5;
  o.randomize_weights = true;
  Workload w = MakeHomogeneousWorkload(cat_, o);
  std::set<double> weights;
  for (const Query& q : w.statements()) weights.insert(q.weight);
  EXPECT_GE(weights.size(), 2u);
  for (double f : weights) {
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, 3.0);
  }
}

TEST_F(WorkloadGenTest, DifferentSeedsDiffer) {
  WorkloadOptions a, b;
  a.num_statements = b.num_statements = 30;
  a.seed = 1;
  b.seed = 2;
  Workload wa = MakeHomogeneousWorkload(cat_, a);
  Workload wb = MakeHomogeneousWorkload(cat_, b);
  int same = 0;
  for (int i = 0; i < 30; ++i) {
    if (wa[i].ToString(cat_) == wb[i].ToString(cat_)) ++same;
  }
  EXPECT_LT(same, 10);
}

}  // namespace
}  // namespace cophy
