// Unit tests for lp/: the Model container and the dense two-phase
// simplex.
#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/simplex.h"

namespace cophy::lp {
namespace {

TEST(ModelTest, VariablesAndRows) {
  Model m;
  const VarId x = m.AddVariable(0, 10, 1.0, false, "x");
  const VarId y = m.AddBinary(-2.0, "y");
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_FALSE(m.variable(x).is_integer);
  EXPECT_TRUE(m.variable(y).is_integer);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 5.0, "r"});
  EXPECT_EQ(m.num_rows(), 1);
}

TEST(ModelTest, ObjectiveValueWithConstant) {
  Model m;
  m.AddVariable(0, 10, 2.0, false);
  m.AddObjectiveConstant(7.0);
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({3.0}), 13.0);
}

TEST(ModelTest, FeasibilityChecks) {
  Model m;
  const VarId x = m.AddBinary(1.0);
  m.AddRow({{{x, 1.0}}, Sense::kGe, 1.0, ""});
  EXPECT_TRUE(m.IsFeasible({1.0}));
  EXPECT_FALSE(m.IsFeasible({0.0}));   // row violated
  EXPECT_FALSE(m.IsFeasible({0.5}));   // integrality violated
  EXPECT_FALSE(m.IsFeasible({2.0}));   // bound violated
}

// --- Simplex -----------------------------------------------------------

TEST(SimplexTest, SimpleTwoVariableLp) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  (opt at x=2, y=2: -6)
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false, "x");
  const VarId y = m.AddVariable(0, 2, -2.0, false, "y");
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -6.0, 1e-7);
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
  EXPECT_NEAR(s.x[y], 2.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y  s.t. x + y = 3, x,y in [0, 5]  (objective 3 everywhere)
  Model m;
  const VarId x = m.AddVariable(0, 5, 1.0, false);
  const VarId y = m.AddVariable(0, 5, 1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 3.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_NEAR(s.x[x] + s.x[y], 3.0, 1e-7);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min 2x + 3y  s.t. x + y >= 4, x <= 2  → x=2, y=2, obj=10
  Model m;
  const VarId x = m.AddVariable(0, 2, 2.0, false);
  const VarId y = m.AddVariable(0, 100, 3.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 10.0, 1e-6);
}

TEST(SimplexTest, InfeasibleDetected) {
  Model m;
  const VarId x = m.AddVariable(0, 1, 1.0, false);
  m.AddRow({{{x, 1.0}}, Sense::kGe, 2.0, ""});
  const LpSolution s = SolveLp(m);
  EXPECT_EQ(s.status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  Model m;
  const VarId x = m.AddVariable(0, std::numeric_limits<double>::infinity(),
                                -1.0, false);
  (void)x;
  const LpSolution s = SolveLp(m);
  EXPECT_EQ(s.status.code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x  s.t. -x <= -2  (i.e. x >= 2)
  Model m;
  const VarId x = m.AddVariable(0, 10, 1.0, false);
  m.AddRow({{{x, -1.0}}, Sense::kLe, -2.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
}

TEST(SimplexTest, BoundOverrides) {
  Model m;
  const VarId x = m.AddVariable(0, 10, -1.0, false);
  std::vector<double> lo{0.0}, hi{4.0};
  const LpSolution s = SolveLp(m, &lo, &hi);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 4.0, 1e-7);
  std::vector<double> lo2{5.0}, hi2{4.0};
  EXPECT_EQ(SolveLp(m, &lo2, &hi2).status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, NonZeroLowerBounds) {
  // min x + y s.t. x + y >= 5, x in [1,10], y in [2,10] → obj 5.
  Model m;
  const VarId x = m.AddVariable(1, 10, 1.0, false);
  const VarId y = m.AddVariable(2, 10, 1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 5.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
  EXPECT_GE(s.x[x], 1.0 - 1e-9);
  EXPECT_GE(s.x[y], 2.0 - 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const VarId x = m.AddVariable(0, 10, -1.0, false);
  const VarId y = m.AddVariable(0, 10, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{x, 2.0}, {y, 2.0}}, Sense::kLe, 8.0, ""});
  m.AddRow({{{x, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(SimplexTest, FractionalLpRelaxationOfKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries relaxed) → a=b=1... with
  // upper bounds 1: relaxation picks a=1, b=1, obj=-16.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId c = m.AddBinary(-4);
  m.AddRow({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLe, 2.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -16.0, 1e-6);
}

}  // namespace
}  // namespace cophy::lp
