// Unit tests for lp/: the CSR/CSC Model container, the sparse LU basis
// factorization (lp/lu_factor.h), and the sparse bounded-variable
// revised simplex, differentially validated against the retained dense
// tableau oracle (lp/dense_simplex.h).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lp/dense_simplex.h"
#include "lp/lu_factor.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace cophy::lp {
namespace {

/// Feasibility of an LP point w.r.t. rows and (possibly overridden)
/// bounds, ignoring integrality.
bool LpFeasible(const Model& m, const std::vector<double>& x,
                double eps = 1e-6) {
  if (static_cast<int>(x.size()) != m.num_variables()) return false;
  for (int i = 0; i < m.num_variables(); ++i) {
    if (x[i] < m.variable(i).lower - eps || x[i] > m.variable(i).upper + eps) {
      return false;
    }
  }
  for (int r = 0; r < m.num_rows(); ++r) {
    const RowView rv = m.row(r);
    double lhs = 0;
    for (int k = 0; k < rv.nnz; ++k) lhs += rv.vals[k] * x[rv.cols[k]];
    switch (rv.sense) {
      case Sense::kLe:
        if (lhs > rv.rhs + eps) return false;
        break;
      case Sense::kGe:
        if (lhs < rv.rhs - eps) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - rv.rhs) > eps) return false;
        break;
    }
  }
  return true;
}

TEST(ModelTest, VariablesAndRows) {
  Model m;
  const VarId x = m.AddVariable(0, 10, 1.0, false, "x");
  const VarId y = m.AddBinary(-2.0, "y");
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_FALSE(m.variable(x).is_integer);
  EXPECT_TRUE(m.variable(y).is_integer);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 5.0, "r"});
  EXPECT_EQ(m.num_rows(), 1);
}

TEST(ModelTest, ObjectiveValueWithConstant) {
  Model m;
  m.AddVariable(0, 10, 2.0, false);
  m.AddObjectiveConstant(7.0);
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({3.0}), 13.0);
}

TEST(ModelTest, FeasibilityChecks) {
  Model m;
  const VarId x = m.AddBinary(1.0);
  m.AddRow({{{x, 1.0}}, Sense::kGe, 1.0, ""});
  EXPECT_TRUE(m.IsFeasible({1.0}));
  EXPECT_FALSE(m.IsFeasible({0.0}));   // row violated
  EXPECT_FALSE(m.IsFeasible({0.5}));   // integrality violated
  EXPECT_FALSE(m.IsFeasible({2.0}));   // bound violated
}

// --- Simplex -----------------------------------------------------------

TEST(SimplexTest, SimpleTwoVariableLp) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  (opt at x=2, y=2: -6)
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false, "x");
  const VarId y = m.AddVariable(0, 2, -2.0, false, "y");
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -6.0, 1e-7);
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
  EXPECT_NEAR(s.x[y], 2.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y  s.t. x + y = 3, x,y in [0, 5]  (objective 3 everywhere)
  Model m;
  const VarId x = m.AddVariable(0, 5, 1.0, false);
  const VarId y = m.AddVariable(0, 5, 1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 3.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_NEAR(s.x[x] + s.x[y], 3.0, 1e-7);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min 2x + 3y  s.t. x + y >= 4, x <= 2  → x=2, y=2, obj=10
  Model m;
  const VarId x = m.AddVariable(0, 2, 2.0, false);
  const VarId y = m.AddVariable(0, 100, 3.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 10.0, 1e-6);
}

TEST(SimplexTest, InfeasibleDetected) {
  Model m;
  const VarId x = m.AddVariable(0, 1, 1.0, false);
  m.AddRow({{{x, 1.0}}, Sense::kGe, 2.0, ""});
  const LpSolution s = SolveLp(m);
  EXPECT_EQ(s.status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  Model m;
  const VarId x = m.AddVariable(0, std::numeric_limits<double>::infinity(),
                                -1.0, false);
  (void)x;
  const LpSolution s = SolveLp(m);
  EXPECT_EQ(s.status.code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x  s.t. -x <= -2  (i.e. x >= 2)
  Model m;
  const VarId x = m.AddVariable(0, 10, 1.0, false);
  m.AddRow({{{x, -1.0}}, Sense::kLe, -2.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
}

TEST(SimplexTest, BoundOverrides) {
  Model m;
  const VarId x = m.AddVariable(0, 10, -1.0, false);
  std::vector<double> lo{0.0}, hi{4.0};
  const LpSolution s = SolveLp(m, &lo, &hi);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 4.0, 1e-7);
  std::vector<double> lo2{5.0}, hi2{4.0};
  EXPECT_EQ(SolveLp(m, &lo2, &hi2).status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, NonZeroLowerBounds) {
  // min x + y s.t. x + y >= 5, x in [1,10], y in [2,10] → obj 5.
  Model m;
  const VarId x = m.AddVariable(1, 10, 1.0, false);
  const VarId y = m.AddVariable(2, 10, 1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 5.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
  EXPECT_GE(s.x[x], 1.0 - 1e-9);
  EXPECT_GE(s.x[y], 2.0 - 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const VarId x = m.AddVariable(0, 10, -1.0, false);
  const VarId y = m.AddVariable(0, 10, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{x, 2.0}, {y, 2.0}}, Sense::kLe, 8.0, ""});
  m.AddRow({{{x, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(SimplexTest, FractionalLpRelaxationOfKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries relaxed) → a=b=1... with
  // upper bounds 1: relaxation picks a=1, b=1, obj=-16.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId c = m.AddBinary(-4);
  m.AddRow({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLe, 2.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -16.0, 1e-6);
}

// --- CSR/CSC storage ----------------------------------------------------

TEST(ModelTest, RowAndColumnViews) {
  Model m;
  const VarId x = m.AddVariable(0, 10, 1.0, false, "x");
  const VarId y = m.AddVariable(0, 10, 2.0, false, "y");
  const VarId z = m.AddVariable(0, 10, 3.0, false, "z");
  m.AddRow({{{x, 1.0}, {z, 3.0}}, Sense::kLe, 5.0, "r0"});
  m.BeginRow(Sense::kGe, 2.0, "r1");
  m.AddTerm(y, 4.0);
  m.AddTerm(z, -1.0);
  EXPECT_EQ(m.EndRow(), 1);
  m.AddRow({{x, 7.0}}, Sense::kEq, 7.0, "r2");  // term-list overload
  EXPECT_EQ(m.num_rows(), 3);
  EXPECT_EQ(m.num_nonzeros(), 5);

  const RowView r0 = m.row(0);
  ASSERT_EQ(r0.nnz, 2);
  EXPECT_EQ(r0.cols[0], x);
  EXPECT_DOUBLE_EQ(r0.vals[1], 3.0);
  EXPECT_EQ(r0.sense, Sense::kLe);
  EXPECT_EQ(m.row_name(1), "r1");

  // Column views are the exact transpose.
  const ColumnView cz = m.column(z);
  ASSERT_EQ(cz.nnz, 2);
  EXPECT_EQ(cz.rows[0], 0);
  EXPECT_DOUBLE_EQ(cz.vals[0], 3.0);
  EXPECT_EQ(cz.rows[1], 1);
  EXPECT_DOUBLE_EQ(cz.vals[1], -1.0);
  const ColumnView cx = m.column(x);
  ASSERT_EQ(cx.nnz, 2);
  EXPECT_EQ(cx.rows[1], 2);
}

TEST(ModelTest, ColumnViewsRebuildAfterNewRows) {
  Model m;
  const VarId x = m.AddVariable(0, 1, 0.0, false);
  m.AddRow({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  EXPECT_EQ(m.column(x).nnz, 1);
  m.AddRow({{{x, 2.0}}, Sense::kLe, 2.0, ""});
  EXPECT_EQ(m.column(x).nnz, 2);  // cache invalidated and rebuilt
}

// --- Bounded-variable edge cases ----------------------------------------

TEST(SimplexTest, FixedVariableBounds) {
  // lo == hi pins the variable; the rest optimizes around it.
  Model m;
  const VarId x = m.AddVariable(3, 3, 5.0, false);   // fixed at 3
  const VarId y = m.AddVariable(0, 10, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 8.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
  EXPECT_NEAR(s.x[y], 5.0, 1e-7);
  EXPECT_NEAR(s.objective, 10.0, 1e-6);
}

TEST(SimplexTest, InfiniteUpperBoundWithBindingRow) {
  // min -x st x <= 7 as a row; variable itself unbounded above.
  Model m;
  const VarId x = m.AddVariable(0, std::numeric_limits<double>::infinity(),
                                -1.0, false);
  m.AddRow({{{x, 1.0}}, Sense::kLe, 7.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[x], 7.0, 1e-7);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y st x + y >= -3, x,y in [-5, 5] → objective -3.
  Model m;
  const VarId x = m.AddVariable(-5, 5, 1.0, false);
  const VarId y = m.AddVariable(-5, 5, 1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kGe, -3.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -3.0, 1e-6);
}

TEST(SimplexTest, MixedMagnitudeRowsStayAccurate) {
  // A storage-style row with 1e9-scale coefficients next to unit
  // linking rows (the conditioning case behind the row equilibration).
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId z = m.AddBinary(1);
  m.AddRow({{{a, 2e9}, {b, 3e9}}, Sense::kLe, 4e9, ""});
  m.AddRow({{{z, 1.0}, {a, -1.0}}, Sense::kGe, 0.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  // a = 1 (forces z = 1), b = 2/3: -10 + 1 - 4 = -13.
  EXPECT_NEAR(s.objective, -13.0, 1e-6);
}

// --- Pivot accounting and basis export/import ----------------------------

TEST(SimplexTest, StatsAndGlobalCountersAccumulate) {
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  const VarId y = m.AddVariable(0, 2, -2.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  ResetSolverCounters();
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  const SolverCounters c = SolverCountersSnapshot();
  EXPECT_EQ(c.lp_solves, 1);
  EXPECT_EQ(c.cold_starts, 1);
  EXPECT_EQ(c.warm_starts, 0);
  EXPECT_EQ(c.phase1_pivots + c.phase2_pivots + c.bound_flips,
            s.stats.phase1_pivots + s.stats.phase2_pivots +
                s.stats.bound_flips);
  EXPECT_GT(s.stats.phase2_pivots + s.stats.bound_flips, 0);
}

TEST(SimplexTest, ExportsDualsAndReducedCosts) {
  // min -x - 2y  s.t. x + y <= 4, x in [0,3], y in [0,2]. Optimum
  // x=2, y=2: the row binds with dual -1 (<= row in a minimization),
  // x is basic (reduced cost 0), y sits at its upper bound with
  // reduced cost -2 - (-1) = -1.
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false, "x");
  const VarId y = m.AddVariable(0, 2, -2.0, false, "y");
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  ASSERT_EQ(s.duals.size(), 1u);
  ASSERT_EQ(s.reduced_costs.size(), 2u);
  EXPECT_NEAR(s.duals[0], -1.0, 1e-7);
  EXPECT_NEAR(s.reduced_costs[x], 0.0, 1e-7);
  EXPECT_NEAR(s.reduced_costs[y], -1.0, 1e-7);
}

TEST(SimplexTest, DualsUnscaledDespiteRowEquilibration) {
  // A 1e9-scale row: the exported dual must be in the *original* row
  // units (y ≈ -1e-9 per byte here), i.e. d_j = c_j - y'A_j holds with
  // the model's own coefficients.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  m.AddRow({{{a, 2e9}, {b, 3e9}}, Sense::kLe, 4e9, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  for (VarId j : {a, b}) {
    double d = m.variable(j).objective;
    const RowView rv = m.row(0);
    for (int k = 0; k < rv.nnz; ++k) {
      if (rv.cols[k] == j) d -= s.duals[0] * rv.vals[k];
    }
    EXPECT_NEAR(d, s.reduced_costs[j], 1e-6) << "var " << j;
  }
}

TEST(SimplexTest, ReimportedBasisSolvesWithZeroPivots) {
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  const VarId y = m.AddVariable(0, 2, -2.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution first = SolveLp(m);
  ASSERT_TRUE(first.status.ok());
  ASSERT_FALSE(first.basis.empty());
  const LpSolution again = SolveLp(m, nullptr, nullptr, &first.basis);
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.stats.warm_started);
  EXPECT_EQ(again.stats.phase1_pivots, 0);
  EXPECT_EQ(again.stats.phase2_pivots, 0);
  EXPECT_NEAR(again.objective, first.objective, 1e-9);
}

TEST(SimplexTest, WarmStartUnderTightenedBoundsMatchesCold) {
  // Branch-and-bound's exact usage: re-solve with one binary fixed.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId c = m.AddBinary(-4);
  m.AddRow({{{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::kLe, 8.0, ""});
  const LpSolution root = SolveLp(m);
  ASSERT_TRUE(root.status.ok());
  std::vector<double> lo{0, 0, 0}, hi{1, 1, 1};
  hi[a] = 0.0;  // fix the branched variable to zero
  const LpSolution cold = SolveLp(m, &lo, &hi);
  const LpSolution warm = SolveLp(m, &lo, &hi, &root.basis);
  ASSERT_TRUE(cold.status.ok());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
}

TEST(SimplexTest, DualEntryNodeResolveSkipsPhase1BitForBit) {
  // The branch-and-bound node contract: a parent-optimal basis
  // re-imported under a tightened bound is dual feasible, so the dual
  // simplex repairs the violation with zero primal phase-1 (and zero
  // primal phase-2) pivots — and lands on the *same vertex* as a cold
  // solve of the child, so the objectives agree bit for bit.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId c = m.AddBinary(-4);
  m.AddRow({{{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::kLe, 8.0, ""});
  const LpSolution root = SolveLp(m);
  ASSERT_TRUE(root.status.ok());

  std::vector<double> lo{0, 0, 0}, hi{1, 1, 1};
  hi[a] = 0.0;  // branch down on `a` (basic and fractional at the root)
  const LpSolution cold = SolveLp(m, &lo, &hi);
  ASSERT_TRUE(cold.status.ok());

  LpOptions dual_entry;
  dual_entry.entry = SimplexEntry::kDual;
  const LpSolution warm = SolveLp(m, dual_entry, &lo, &hi, &root.basis);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_TRUE(warm.stats.dual_entered);
  EXPECT_EQ(warm.stats.phase1_pivots, 0);
  EXPECT_EQ(warm.stats.phase2_pivots, 0);
  EXPECT_GE(warm.stats.dual_pivots, 1);  // the violated bound pivots out
  // Both solves sit on the vertex x = (0, 1, 1): identical doubles.
  EXPECT_EQ(warm.objective, cold.objective);
  for (int j = 0; j < m.num_variables(); ++j) {
    EXPECT_EQ(warm.x[j], cold.x[j]) << "var " << j;
  }
}

TEST(SimplexTest, DualEntryProvesChildInfeasibleWithoutPhase1) {
  // An over-tightened child must come back Infeasible straight from the
  // dual ratio test (a violated row with no entering candidate), again
  // with zero primal phase-1 work.
  Model m;
  const VarId x = m.AddVariable(0, 5, -1.0, false);
  const VarId y = m.AddVariable(0, 5, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0, ""});
  const LpSolution root = SolveLp(m);
  ASSERT_TRUE(root.status.ok());

  std::vector<double> lo{0, 0}, hi{1, 1};  // x + y <= 2 < 4: empty
  LpOptions dual_entry;
  dual_entry.entry = SimplexEntry::kDual;
  const LpSolution child = SolveLp(m, dual_entry, &lo, &hi, &root.basis);
  EXPECT_EQ(child.status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(child.stats.phase1_pivots, 0);
}

TEST(SimplexTest, PricingRulesAgreeOnTheOptimum) {
  // Devex and Dantzig must land on the same objective (possibly via
  // different pivot sequences) on a degenerate-ish multi-row LP.
  Model m;
  std::vector<VarId> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back(m.AddVariable(0, 2, -1.0 - 0.25 * i, false));
  }
  for (int r = 0; r < 5; ++r) {
    Row row;
    row.sense = Sense::kLe;
    row.rhs = 4.0 + r;
    for (int i = r; i < 8; i += 2) row.terms.push_back({v[i], 1.0 + (i & 1)});
    m.AddRow(std::move(row));
  }
  LpOptions dantzig;
  dantzig.pricing = Pricing::kDantzig;
  LpOptions devex;
  devex.pricing = Pricing::kDevex;
  const LpSolution sd = SolveLp(m, dantzig);
  const LpSolution sv = SolveLp(m, devex);
  ASSERT_TRUE(sd.status.ok());
  ASSERT_TRUE(sv.status.ok());
  EXPECT_NEAR(sd.objective, sv.objective, 1e-9 + 1e-9 * std::abs(sd.objective));
}

TEST(SimplexTest, UnusableBasisFallsBackToColdStart) {
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  m.AddRow({{{x, 1.0}}, Sense::kLe, 2.0, ""});
  LpBasis junk;
  junk.variables = {VarStatus::kBasic};  // wrong slack count
  const LpSolution s = SolveLp(m, nullptr, nullptr, &junk);
  ASSERT_TRUE(s.status.ok());
  EXPECT_FALSE(s.stats.warm_started);
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
}

// --- Input validation: NaN/Inf never reach the factorization -------------

TEST(ModelValidationTest, NanVariableBoundLatchesInvalidArgument) {
  Model m;
  m.AddVariable(std::numeric_limits<double>::quiet_NaN(), 1.0, 0.0, false);
  EXPECT_EQ(m.input_status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLp(m).status.code(), StatusCode::kInvalidArgument);
}

TEST(ModelValidationTest, NonFiniteObjectiveCoefficientLatches) {
  Model m;
  m.AddVariable(0.0, 1.0, std::numeric_limits<double>::infinity(), false);
  EXPECT_EQ(m.input_status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLp(m).status.code(), StatusCode::kInvalidArgument);
}

TEST(ModelValidationTest, SetVariableBoundsRejectsNanAndKeepsOldBounds) {
  Model m;
  const VarId x = m.AddVariable(1.0, 2.0, 0.0, false);
  m.SetVariableBounds(x, std::numeric_limits<double>::quiet_NaN(), 3.0);
  EXPECT_EQ(m.input_status().code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(m.variable(x).lower, 1.0);  // unchanged
  EXPECT_DOUBLE_EQ(m.variable(x).upper, 2.0);
}

TEST(ModelValidationTest, SetVariableBoundsRejectsCrossedBounds) {
  Model m;
  const VarId x = m.AddVariable(0.0, 1.0, 0.0, false);
  m.SetVariableBounds(x, 2.0, 1.0);
  EXPECT_EQ(m.input_status().code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(m.variable(x).upper, 1.0);
}

TEST(ModelValidationTest, NonFiniteRowRhsLatches) {
  Model m;
  const VarId x = m.AddVariable(0.0, 1.0, -1.0, false);
  m.BeginRow(Sense::kLe, std::numeric_limits<double>::infinity());
  m.AddTerm(x, 1.0);
  m.EndRow();
  EXPECT_EQ(m.input_status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLp(m).status.code(), StatusCode::kInvalidArgument);
}

TEST(ModelValidationTest, NonFiniteRowCoefficientLatchesAndIsDropped) {
  Model m;
  const VarId x = m.AddVariable(0.0, 1.0, -1.0, false);
  m.BeginRow(Sense::kLe, 1.0);
  m.AddTerm(x, std::numeric_limits<double>::quiet_NaN());
  m.EndRow();
  EXPECT_EQ(m.num_nonzeros(), 0);  // the poisoned term never lands
  EXPECT_EQ(m.input_status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLp(m).status.code(), StatusCode::kInvalidArgument);
}

TEST(ModelValidationTest, FirstLatchedErrorWins) {
  Model m;
  m.AddVariable(std::numeric_limits<double>::quiet_NaN(), 1.0, 0.0, false);
  m.BeginRow(Sense::kLe, std::numeric_limits<double>::infinity());
  m.EndRow();
  EXPECT_NE(m.input_status().ToString().find("NaN variable bound"),
            std::string::npos)
      << m.input_status().ToString();
}

TEST(ModelValidationTest, NanBoundOverrideRejectedBySolve) {
  Model m;
  const VarId x = m.AddVariable(0.0, 1.0, -1.0, false);
  m.AddRow({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  ASSERT_TRUE(m.input_status().ok());
  std::vector<double> lo{std::numeric_limits<double>::quiet_NaN()}, hi{1.0};
  EXPECT_EQ(SolveLp(m, &lo, &hi).status.code(),
            StatusCode::kInvalidArgument);
  std::vector<double> lo2{0.0},
      hi2{std::numeric_limits<double>::quiet_NaN()};
  EXPECT_EQ(SolveLp(m, &lo2, &hi2).status.code(),
            StatusCode::kInvalidArgument);
}

// --- Numerical safeguards: certification and the recovery ladder --------

TEST(SimplexTest, SolutionsCertifyWithSafeguardsOn) {
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  const VarId y = m.AddVariable(0, 2, -2.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_TRUE(s.stats.certified);
  EXPECT_LE(s.stats.primal_residual, 1e-6);
  EXPECT_LE(s.stats.dual_residual, 1e-6);
  EXPECT_LE(s.stats.objective_gap, 1e-6);

  // The ablation baseline never claims certification.
  LpOptions off;
  off.safeguards = false;
  const LpSolution raw = SolveLp(m, off);
  ASSERT_TRUE(raw.status.ok());
  EXPECT_FALSE(raw.stats.certified);
  EXPECT_NEAR(raw.objective, s.objective, 1e-9);
}

TEST(SimplexTest, ScalingModesAgreeOnTheOptimum) {
  // Wide dynamic range: a 1e9-scale storage row against unit linking
  // rows. Geometric-mean column scaling and the legacy row
  // equilibration must land on the same (unscaled) optimum, duals
  // included.
  Model m;
  const VarId a = m.AddBinary(-10);
  const VarId b = m.AddBinary(-6);
  const VarId z = m.AddBinary(1);
  m.AddRow({{{a, 2e9}, {b, 3e9}}, Sense::kLe, 4e9, ""});
  m.AddRow({{{z, 1.0}, {a, -1.0}}, Sense::kGe, 0.0, ""});
  LpOptions geo;
  geo.scaling = LpScaling::kGeometricMean;
  LpOptions rows;
  rows.scaling = LpScaling::kRowEquilibrate;
  const LpSolution sg = SolveLp(m, geo);
  const LpSolution sr = SolveLp(m, rows);
  ASSERT_TRUE(sg.status.ok());
  ASSERT_TRUE(sr.status.ok());
  EXPECT_NEAR(sg.objective, -13.0, 1e-6);
  EXPECT_NEAR(sr.objective, -13.0, 1e-6);
  ASSERT_EQ(sg.duals.size(), sr.duals.size());
  for (size_t r = 0; r < sg.duals.size(); ++r) {
    EXPECT_NEAR(sg.duals[r], sr.duals[r], 1e-9 + 1e-6 * std::abs(sr.duals[r]))
        << "row " << r;
  }
}

TEST(SimplexTest, SingularWarmImportRepairedThroughSlackSubstitution) {
  // Two structural columns that are exact copies (duplicated rows), both
  // marked basic: the imported basis matrix is singular. The recovery
  // ladder must raise the Markowitz threshold, then swap the dependent
  // column for an uncovered row's slack — and still reach the certified
  // optimum instead of falling back to a cold start.
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  const VarId y = m.AddVariable(0, 3, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  LpBasis sick;
  sick.variables = {VarStatus::kBasic, VarStatus::kBasic};
  sick.slacks = {VarStatus::kAtLower, VarStatus::kAtLower};
  const LpSolution s = SolveLp(m, nullptr, nullptr, &sick);
  ASSERT_TRUE(s.status.ok()) << s.status.ToString();
  EXPECT_TRUE(s.stats.warm_started);  // repaired, not rejected
  EXPECT_GE(s.stats.markowitz_escalations, 1);
  EXPECT_GE(s.stats.singular_repairs, 1);
  EXPECT_TRUE(s.stats.certified);
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(SimplexTest, StallWatchdogPerturbsThenCleansUp) {
  // The only improving column is blocked by slacks already at zero
  // (y <= x rows with x = 0), so the first pivots are forced to be
  // degenerate. With the watchdog hair-triggered, the solve must
  // install a bound perturbation, finish, remove it again, and still
  // certify the exact optimum.
  Model m;
  const VarId x = m.AddVariable(0, 2, 0.0, false);
  const VarId y = m.AddVariable(0, 2, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0, ""});
  m.AddRow({{{x, -1.0}, {y, 1.0}}, Sense::kLe, 0.0, ""});
  m.AddRow({{{x, -1.0}, {y, 1.0}}, Sense::kLe, 0.0, ""});
  LpOptions options;
  options.stall_pivot_limit = 1;  // first degenerate pivot escalates
  const LpSolution s = SolveLp(m, options);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -0.5, 1e-7);
  EXPECT_GE(s.stats.perturbations_applied, 1);
  // Every installed round came back out before the verdict.
  EXPECT_EQ(s.stats.perturbations_applied, s.stats.perturbations_removed);
  EXPECT_TRUE(s.stats.certified);
  // And the exported point is exact, not perturbed.
  EXPECT_TRUE(LpFeasible(m, s.x, 1e-9));
}

TEST(SimplexTest, SafeguardCountersReachTheGlobalTotals) {
  Model m;
  const VarId x = m.AddVariable(0, 3, -1.0, false);
  const VarId y = m.AddVariable(0, 3, -1.0, false);
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  m.AddRow({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  LpBasis sick;
  sick.variables = {VarStatus::kBasic, VarStatus::kBasic};
  sick.slacks = {VarStatus::kAtLower, VarStatus::kAtLower};
  const SolverCounters before = SolverCountersSnapshot();
  const LpSolution s = SolveLp(m, nullptr, nullptr, &sick);
  ASSERT_TRUE(s.status.ok());
  const SolverCounters delta = SolverCountersSince(before);
  EXPECT_EQ(delta.certified_solves + delta.uncertified_solves, 1);
  EXPECT_EQ(delta.singular_repairs, s.stats.singular_repairs);
  EXPECT_EQ(delta.markowitz_escalations, s.stats.markowitz_escalations);
  EXPECT_EQ(delta.perturbations_applied, s.stats.perturbations_applied);
  EXPECT_EQ(delta.perturbations_removed, s.stats.perturbations_removed);
}

// --- Sparse LU basis factorization ---------------------------------------

/// Builds the CSC arrays of a dense column-major matrix (zeros skipped).
struct CscMatrix {
  std::vector<int32_t> start{0};
  std::vector<int32_t> rows;
  std::vector<double> vals;
};
CscMatrix ToCsc(const std::vector<std::vector<double>>& cols) {
  CscMatrix csc;
  for (const auto& col : cols) {
    for (size_t r = 0; r < col.size(); ++r) {
      if (col[r] != 0.0) {
        csc.rows.push_back(static_cast<int32_t>(r));
        csc.vals.push_back(col[r]);
      }
    }
    csc.start.push_back(static_cast<int32_t>(csc.rows.size()));
  }
  return csc;
}

/// y = B x for a dense column-major B with x indexed by column.
std::vector<double> MatVec(const std::vector<std::vector<double>>& cols,
                           const std::vector<double>& x) {
  std::vector<double> y(cols[0].size(), 0.0);
  for (size_t c = 0; c < cols.size(); ++c) {
    for (size_t r = 0; r < y.size(); ++r) y[r] += cols[c][r] * x[c];
  }
  return y;
}

TEST(LuFactorTest, FtranBtranRoundTripOnKnownBasis) {
  // B given by columns; non-trivial pivoting (no diagonal dominance).
  const std::vector<std::vector<double>> b_cols = {
      {2, 1, 0}, {0, 3, 1}, {1, 0, 1}};
  const CscMatrix csc = ToCsc(b_cols);
  LuFactor lu;
  ASSERT_TRUE(lu.Factorize(3, csc.start, csc.rows, csc.vals));
  EXPECT_GT(lu.factor_nnz(), 0);

  // FTRAN: solve B w = rhs, then check B w reproduces rhs.
  const std::vector<double> rhs = {5, 4, 3};
  std::vector<double> w = rhs;
  lu.Ftran(w);
  const std::vector<double> bw = MatVec(b_cols, w);
  for (int r = 0; r < 3; ++r) EXPECT_NEAR(bw[r], rhs[r], 1e-12);

  // BTRAN: solve y' B = c', then check y' B reproduces c.
  const std::vector<double> c = {1, -2, 3};
  std::vector<double> y = c;
  lu.Btran(y);
  for (int j = 0; j < 3; ++j) {
    double acc = 0;
    for (int r = 0; r < 3; ++r) acc += y[r] * b_cols[j][r];
    EXPECT_NEAR(acc, c[j], 1e-12) << "col " << j;
  }
}

TEST(LuFactorTest, SingularBasisRejected) {
  // Column 2 = column 0: structurally rank deficient.
  const CscMatrix csc = ToCsc({{1, 2}, {1, 2}});
  LuFactor lu;
  EXPECT_FALSE(lu.Factorize(2, csc.start, csc.rows, csc.vals));
}

TEST(LuFactorTest, EtaUpdateMatchesFreshRefactorizationAfterKPivots) {
  // Start from B0 and replace K columns one at a time through the
  // product-form eta file; after every update, FTRAN/BTRAN through
  // (factors + etas) must match a fresh factorization of the current B.
  std::vector<std::vector<double>> b_cols = {
      {4, 1, 0, 0}, {0, 3, 1, 0}, {1, 0, 2, 1}, {0, 0, 0, 5}};
  const std::vector<std::pair<int, std::vector<double>>> replacements = {
      {1, {1, 1, 4, 0}}, {3, {0, 2, 0, 3}}, {0, {2, 0, 0, 1}}};
  CscMatrix csc = ToCsc(b_cols);
  LuFactor lu;
  ASSERT_TRUE(lu.Factorize(4, csc.start, csc.rows, csc.vals));

  const std::vector<double> rhs = {1, 2, -1, 3};
  const std::vector<double> c = {-1, 4, 0, 2};
  for (const auto& [pos, col] : replacements) {
    // w = B^{-1} a_new drives both the eta and the column swap.
    std::vector<double> w(col);
    lu.Ftran(w);
    ASSERT_TRUE(lu.Update(w, pos));
    b_cols[pos] = col;

    LuFactor fresh;
    csc = ToCsc(b_cols);
    ASSERT_TRUE(fresh.Factorize(4, csc.start, csc.rows, csc.vals));

    std::vector<double> via_eta = rhs, via_fresh = rhs;
    lu.Ftran(via_eta);
    fresh.Ftran(via_fresh);
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(via_eta[i], via_fresh[i], 1e-10) << "ftran pos " << i;
    }
    via_eta = c;
    via_fresh = c;
    lu.Btran(via_eta);
    fresh.Btran(via_fresh);
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(via_eta[i], via_fresh[i], 1e-10) << "btran pos " << i;
    }
  }
  EXPECT_EQ(lu.eta_count(), 3);
  EXPECT_GT(lu.eta_nnz(), 0);
}

TEST(LuFactorTest, DriftTriggeredRefactorization) {
  // An eta whose pivot is tiny relative to the incoming column's
  // largest entry breaks the threshold-pivoting stability guarantee:
  // the factorization must flag itself for refactorization.
  const CscMatrix csc = ToCsc({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  LuFactor lu;
  ASSERT_TRUE(lu.Factorize(3, csc.start, csc.rows, csc.vals));
  EXPECT_FALSE(lu.NeedsRefactorization());

  std::vector<double> stable = {0.5, 2.0, 0.25};
  ASSERT_TRUE(lu.Update(stable, 1));
  EXPECT_FALSE(lu.NeedsRefactorization());
  EXPECT_NEAR(lu.last_pivot_stability(), 1.0, 1e-12);

  std::vector<double> drifty = {1e6, 1e-5, 0.0};
  ASSERT_TRUE(lu.Update(drifty, 1));
  EXPECT_LT(lu.last_pivot_stability(), 1e-3);
  EXPECT_TRUE(lu.NeedsRefactorization());

  // A fresh factorization clears the flag and the eta file.
  ASSERT_TRUE(lu.Factorize(3, csc.start, csc.rows, csc.vals));
  EXPECT_FALSE(lu.NeedsRefactorization());
  EXPECT_EQ(lu.eta_count(), 0);
}

TEST(SimplexTest, LongSolveReportsForrestTomlinFactorStats) {
  // A chain of coupled rows forces a long pivot sequence. With
  // Forrest–Tomlin updates the factors stay healthy, so no fixed-
  // interval refactorization is forced — but every pivot must appear in
  // the FT accounting, and the cold factorization plus any trigger-
  // driven refreshes land in `refactorizations`.
  Model m;
  const int n = 140;
  std::vector<VarId> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = m.AddVariable(0, 1, -1.0 - 0.001 * (i % 7), false);
  }
  for (int i = 0; i + 1 < n; ++i) {
    m.AddRow({{{v[i], 1.0}, {v[i + 1], 1.0}}, Sense::kLe, 1.0, ""});
  }
  const LpSolution s = SolveLp(m);
  ASSERT_TRUE(s.status.ok());
  EXPECT_GT(s.stats.phase2_pivots + s.stats.bound_flips, 96);
  EXPECT_GE(s.stats.refactorizations, 1);  // cold factorize at minimum
  EXPECT_GT(s.stats.ft_updates, 0);        // pivots ran through FT
  EXPECT_GT(s.stats.eta_nnz, 0);
  EXPECT_GE(s.stats.ftran_btran_seconds, 0.0);
  EXPECT_LT(s.stats.max_drift, 1e-6);  // healthy factors drift ~0
}

// --- Differential sweep against the dense tableau oracle ----------------

class SimplexDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexDifferentialTest, MatchesDenseOracle) {
  Rng rng(4000 + GetParam());
  Model m;
  const int n = 3 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < n; ++i) {
    const double c = -6.0 + static_cast<double>(rng.Uniform(13));
    if (rng.Bernoulli(0.15)) {
      const double v = static_cast<double>(rng.Uniform(4));
      m.AddVariable(v, v, c, false);  // fixed variable
    } else if (rng.Bernoulli(0.15)) {
      m.AddVariable(0, std::numeric_limits<double>::infinity(), c, false);
    } else if (rng.Bernoulli(0.2)) {
      m.AddVariable(-2.0 - static_cast<double>(rng.Uniform(3)),
                    1.0 + static_cast<double>(rng.Uniform(5)), c, false);
    } else {
      m.AddVariable(0, 1.0 + static_cast<double>(rng.Uniform(6)), c, false);
    }
  }
  const int rows = 1 + static_cast<int>(rng.Uniform(5));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) {
        row.terms.push_back(
            {i, -3.0 + static_cast<double>(rng.Uniform(7))});
      }
    }
    if (row.terms.empty()) continue;
    const uint64_t pick = rng.Uniform(10);
    row.sense = pick < 6 ? Sense::kLe : (pick < 9 ? Sense::kGe : Sense::kEq);
    row.rhs = -4.0 + static_cast<double>(rng.Uniform(16));
    m.AddRow(std::move(row));
  }
  // An unbounded objective needs at least one unbounded variable with
  // negative cost; those cases are covered by UnboundedDetected.
  const LpSolution revised = SolveLp(m);
  const LpSolution dense = SolveLpDense(m);
  if (revised.status.ok()) {
    EXPECT_TRUE(LpFeasible(m, revised.x)) << "revised solution infeasible";
    // Exported duals satisfy d = c - y'A against the model's own rows
    // (catches any row-scaling leak), and reduced costs carry the
    // optimality signs.
    std::vector<double> d(m.num_variables());
    for (int j = 0; j < m.num_variables(); ++j) {
      d[j] = m.variable(j).objective;
    }
    for (int r = 0; r < m.num_rows(); ++r) {
      const RowView rv = m.row(r);
      for (int k = 0; k < rv.nnz; ++k) {
        d[rv.cols[k]] -= revised.duals[r] * rv.vals[k];
      }
    }
    for (int j = 0; j < m.num_variables(); ++j) {
      EXPECT_NEAR(d[j], revised.reduced_costs[j],
                  1e-5 + 1e-7 * std::abs(d[j]))
          << "var " << j;
    }
  }
  if (dense.status.ok()) {
    // The oracle's answer must be genuinely feasible. (This used to be
    // a filter: degenerate artificials left basic after phase 1 could
    // drift in phase 2 and yield an infeasible "optimum". Fixed by
    // driving artificials out through slack columns too.)
    EXPECT_TRUE(LpFeasible(m, dense.x)) << "dense oracle solution infeasible";
  }
  if (revised.status.ok() && dense.status.ok()) {
    EXPECT_NEAR(revised.objective, dense.objective,
                1e-5 + 1e-7 * std::abs(dense.objective));
  }
  if (!revised.status.ok() && dense.status.ok()) {
    // Revised claims infeasible/unbounded: the oracle must not hold a
    // feasible bounded optimum.
    EXPECT_FALSE(LpFeasible(m, dense.x))
        << "revised=" << revised.status.ToString()
        << " but dense found a feasible point";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexDifferentialTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace cophy::lp
